package collection

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrRawUnsupported is returned by NextRaw when the underlying format
// cannot be split into raw per-tree statements (e.g. NEXUS with a
// TRANSLATE table, whose trees are not self-contained).
var ErrRawUnsupported = errors.New("collection: raw statements unsupported for this format")

// RawSource is implemented by sources that can hand out *unparsed* tree
// statements, letting engines parse in parallel workers — the "parallelize
// the reading of trees" dimension of the paper's DSMP/BFHRF design.
// NextRaw returns one complete Newick statement (terminated by ';') per
// call and io.EOF at the end.
type RawSource interface {
	Source
	NextRaw() (string, error)
}

// NextRaw implements RawSource for plain-Newick files (including gzipped
// ones). NEXUS inputs return ErrRawUnsupported; callers fall back to the
// parsed path.
func (s *File) NextRaw() (string, error) {
	if s.r == nil {
		if err := s.Reset(); err != nil {
			return "", err
		}
	}
	if s.raw == nil {
		return "", ErrRawUnsupported
	}
	stmt, err := s.raw.next()
	if err == io.EOF {
		if s.count < 0 {
			s.count = s.seen
		}
		return "", io.EOF
	}
	if err != nil {
		return "", fmt.Errorf("collection: %s: %w", s.Path, err)
	}
	s.seen++
	return stmt, nil
}

// NextRaw implements RawSource for Head when the wrapped source supports
// it, preserving the N-tree cap. As with File, use either Next or NextRaw
// within one pass, not both.
func (h *Head) NextRaw() (string, error) {
	if h.seen >= h.N {
		return "", io.EOF
	}
	rs, ok := h.Src.(RawSource)
	if !ok {
		return "", ErrRawUnsupported
	}
	stmt, err := rs.NextRaw()
	if err != nil {
		return "", err
	}
	h.seen++
	return stmt, nil
}

// rawScanner splits a Newick stream into per-tree statements at top-level
// semicolons, respecting quoted labels and (nested) bracket comments. It
// performs no parsing beyond that, so splitting is far cheaper than tree
// construction and the expensive work lands in parallel workers.
type rawScanner struct {
	br *bufio.Reader
	sb strings.Builder
}

func newRawScanner(br *bufio.Reader) *rawScanner { return &rawScanner{br: br} }

func (rs *rawScanner) next() (string, error) {
	rs.sb.Reset()
	inQuote := false
	depth := 0
	nonSpace := false
	for {
		b, err := rs.br.ReadByte()
		if err == io.EOF {
			if nonSpace {
				return "", fmt.Errorf("unterminated tree statement %q", clip(rs.sb.String()))
			}
			return "", io.EOF
		}
		if err != nil {
			return "", err
		}
		rs.sb.WriteByte(b)
		switch {
		case inQuote:
			if b == '\'' {
				inQuote = false // doubled quotes toggle twice, harmlessly
			}
		case depth > 0:
			switch b {
			case '[':
				depth++
			case ']':
				depth--
			}
		case b == '\'':
			inQuote = true
			nonSpace = true
		case b == '[':
			depth++
		case b == ';':
			return rs.sb.String(), nil
		case b != ' ' && b != '\t' && b != '\n' && b != '\r':
			nonSpace = true
		}
	}
}

func clip(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
