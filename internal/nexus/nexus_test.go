package nexus_test

import (
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/nexus"
)

const sample = `#NEXUS
[ comment at the top [nested] ]
BEGIN TAXA;
    DIMENSIONS NTAX=4;
    TAXLABELS A B C D;
END;

BEGIN TREES;
    TRANSLATE
        1 A,
        2 B,
        3 'C c',
        4 D_d;
    TREE tree1 = [&U] ((1,2),(3,4));
    TREE tree2 = ((1,3),(2,4));
END;
`

func TestReadSample(t *testing.T) {
	r := nexus.NewReader(strings.NewReader(sample))
	trees, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2", len(trees))
	}
	names := trees[0].LeafNames()
	sort.Strings(names)
	want := []string{"A", "B", "C c", "D d"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("leaf %d = %q, want %q (translate applied)", i, names[i], want[i])
		}
	}
	if r.TreesRead() != 2 {
		t.Errorf("TreesRead = %d", r.TreesRead())
	}
	// RF between the two trees: distinct quartets → 2.
	d, err := day.RF(trees[0], trees[1])
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("RF = %d, want 2", d)
	}
}

func TestMissingHeader(t *testing.T) {
	r := nexus.NewReader(strings.NewReader("BEGIN TREES; TREE x = (A,B,C); END;"))
	if _, err := r.Read(); err == nil {
		t.Error("missing #NEXUS header should fail")
	}
}

func TestNoTreesBlock(t *testing.T) {
	r := nexus.NewReader(strings.NewReader("#NEXUS\nBEGIN TAXA;\nEND;\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestWithoutTranslate(t *testing.T) {
	src := "#NEXUS\nBEGIN TREES;\nTREE a = ((A,B),(C,D));\nEND;\n"
	trees, err := nexus.NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].NumLeaves() != 4 {
		t.Fatalf("unexpected parse: %d trees", len(trees))
	}
}

func TestMultipleTreesBlocks(t *testing.T) {
	src := `#NEXUS
BEGIN TREES;
TREE a = (A,B,(C,D));
END;
BEGIN CHARACTERS;
MATRIX x y z;
END;
BEGIN TREES;
TREE b = (A,C,(B,D));
TREE c = (A,D,(B,C));
END;
`
	trees, err := nexus.NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Errorf("trees = %d, want 3 across two blocks", len(trees))
	}
}

func TestRootingAnnotationsIgnored(t *testing.T) {
	src := "#NEXUS\nBEGIN TREES;\nTREE a = [&R] ((A,B),(C,D));\nUTREE b = [&U] ((A,B),(C,D));\nEND;\n"
	trees, err := nexus.NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2 (TREE and UTREE)", len(trees))
	}
	if d := day.MustRF(trees[0], trees[1]); d != 0 {
		t.Errorf("RF = %d between identical topologies", d)
	}
}

func TestQuotedSemicolonInLabel(t *testing.T) {
	src := "#NEXUS\nBEGIN TREES;\nTREE a = (('we;ird',B),(C,D));\nEND;\n"
	trees, err := nexus.NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	names := trees[0].LeafNames()
	sort.Strings(names)
	if names[len(names)-1] != "we;ird" {
		t.Errorf("quoted semicolon mangled: %v", names)
	}
}

func TestBranchLengthsSurvive(t *testing.T) {
	src := "#NEXUS\nBEGIN TREES;\nTREE a = ((A:1.5,B:2):0.5,(C:1,D:1):0.5);\nEND;\n"
	trees, err := nexus.NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	out := newick.String(trees[0], newick.DefaultWriteOptions())
	if !strings.Contains(out, ":1.5") {
		t.Errorf("lengths lost: %s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"#NEXUS\nBEGIN TREES;\nTREE a = ((A,B);\nEND;\n",                             // bad newick
		"#NEXUS\nBEGIN TREES;\nTREE a ((A,B),(C,D));\nEND;\n",                        // no '='
		"#NEXUS\nBEGIN TREES;\nTRANSLATE 1 A, 1 B;\nTREE a = ((1,1),(A,B));\nEND;\n", // dup token
		"#NEXUS\nBEGIN TREES;\nTREE a = (A,B,(C,D))\n",                               // unterminated
	}
	for i, src := range cases {
		if _, err := nexus.NewReader(strings.NewReader(src)).ReadAll(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMrBayesStyle(t *testing.T) {
	// The shape MrBayes .t files take: numeric translate, many samples,
	// trailing "end;" in lowercase.
	var sb strings.Builder
	sb.WriteString("#NEXUS\n[ID: 0123456789]\nbegin trees;\n   translate\n")
	sb.WriteString("      1 t0000,\n      2 t0001,\n      3 t0002,\n      4 t0003;\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("   tree gen.")
		sb.WriteString(strings.Repeat("0", 3))
		sb.WriteString(" = [&U] ((1:0.1,2:0.1):0.05,(3:0.1,4:0.1):0.05);\n")
	}
	sb.WriteString("end;\n")
	trees, err := nexus.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 50 {
		t.Errorf("trees = %d, want 50", len(trees))
	}
	if trees[0].LeafNames()[0] == "1" {
		t.Error("translate table not applied")
	}
}
