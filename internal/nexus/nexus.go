// Package nexus reads tree collections from NEXUS files — the format
// emitted by MrBayes and PAUP*, the Bayesian/parsimony tools the paper
// cites as the standard producers of large tree collections ([10], [11]).
//
// The reader handles the constructs those tools actually emit:
//
//   - the "#NEXUS" magic header (case-insensitive);
//   - bracketed comments [...] anywhere, including nested;
//   - BEGIN TREES; ... END; blocks (other blocks are skipped);
//   - an optional TRANSLATE table mapping tokens to taxon labels;
//   - "TREE name = [&U] (...);" statements, with rooting annotations
//     ([&U]/[&R]) tolerated and ignored (RF treats trees as unrooted);
//   - quoted labels and underscore decoding, via the newick sub-parser.
//
// Trees are streamed one at a time, like newick.Reader, so collections of
// hundreds of thousands of posterior samples never need to be resident.
package nexus

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/newick"
	"repro/internal/tree"
)

// Reader streams trees from a NEXUS source.
type Reader struct {
	br        *bufio.Reader
	translate map[string]string
	inTrees   bool
	started   bool
	count     int
	line      int // 1-based, tracks '\n' bytes consumed
	limits    newick.Limits
}

// NewReader wraps r. The NEXUS header is validated on the first Read.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r), line: 1}
}

// SetLimits applies per-tree resource limits to subsequent Reads. Tree
// statements larger than MaxTreeBytes (plus keyword slack) are consumed
// without buffering and reported as a *StatementError.
func (r *Reader) SetLimits(l newick.Limits) { r.limits = l }

// TreesRead returns the number of trees returned so far.
func (r *Reader) TreesRead() int { return r.count }

// Line returns the 1-based line number of the reader's position, for
// per-tree diagnostics in lenient mode.
func (r *Reader) Line() int { return r.line }

// StatementError reports a failure confined to a single NEXUS statement
// (a malformed or oversized TREE line). The statement has been fully
// consumed, so lenient callers may simply call Read again; everything
// else — a missing header, a corrupt TRANSLATE table, truncated input —
// is returned as an ordinary error because continuing could silently
// mislabel every subsequent tree.
type StatementError struct {
	Line int
	Stmt string // leading fragment of the offending statement
	Err  error
	// Limit marks statements rejected by a resource limit rather than a
	// parse failure.
	Limit bool
}

func (e *StatementError) Error() string {
	return fmt.Sprintf("nexus: line %d: statement %q: %v", e.Line, e.Stmt, e.Err)
}

func (e *StatementError) Unwrap() error { return e.Err }

// Read returns the next tree, or io.EOF after the last TREE statement.
func (r *Reader) Read() (*tree.Tree, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return nil, err
		}
		r.started = true
	}
	for {
		if !r.inTrees {
			ok, err := r.seekTreesBlock()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, io.EOF
			}
			r.inTrees = true
		}
		stmt, err := r.readStatement()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		kw := keywordOf(stmt)
		switch kw {
		case "END", "ENDBLOCK":
			r.inTrees = false
			continue
		case "TRANSLATE":
			if err := r.parseTranslate(stmt); err != nil {
				return nil, err
			}
			continue
		case "TREE", "UTREE":
			t, err := r.parseTree(stmt)
			if err != nil {
				return nil, err
			}
			r.count++
			return t, nil
		default:
			continue // TITLE, LINK, etc.
		}
	}
}

// ReadAll reads every remaining tree.
func (r *Reader) ReadAll() ([]*tree.Tree, error) {
	var out []*tree.Tree
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

func (r *Reader) readHeader() error {
	line, err := r.readMeaningfulLine()
	if err != nil {
		return fmt.Errorf("nexus: missing #NEXUS header: %w", err)
	}
	if !strings.EqualFold(strings.TrimSpace(line), "#NEXUS") {
		return fmt.Errorf("nexus: first line is %q, want #NEXUS", strings.TrimSpace(line))
	}
	return nil
}

// readMeaningfulLine returns the next line that is not blank after comment
// stripping... except comments can span lines, so it reads byte-wise.
func (r *Reader) readMeaningfulLine() (string, error) {
	for {
		line, err := r.br.ReadString('\n')
		if strings.HasSuffix(line, "\n") {
			r.line++
		}
		if line == "" && err != nil {
			return "", err
		}
		stripped := strings.TrimSpace(line)
		if stripped != "" {
			return stripped, nil
		}
		if err != nil {
			return "", err
		}
	}
}

// seekTreesBlock scans statements until "BEGIN TREES" is found.
func (r *Reader) seekTreesBlock() (bool, error) {
	for {
		stmt, err := r.readStatement()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		fields := strings.Fields(stmt)
		if len(fields) >= 2 && strings.EqualFold(fields[0], "BEGIN") &&
			strings.EqualFold(strings.TrimSuffix(fields[1], ";"), "TREES") {
			return true, nil
		}
	}
}

// readStatement reads up to the next top-level ';', skipping comments and
// respecting single-quoted strings. The ';' is consumed but not returned.
// When a statement byte limit is set, an oversized statement is drained
// (without buffering it) and reported as a *StatementError — so a header
// claiming a 100MB tree costs a bounded scan, not a 100MB allocation.
func (r *Reader) readStatement() (string, error) {
	var sb strings.Builder
	inQuote := false
	depth := 0
	read := 0
	startLine := r.line
	// Slack over the per-tree budget covers the "TREE name = " prefix.
	max := 0
	if r.limits.MaxTreeBytes > 0 {
		max = r.limits.MaxTreeBytes + 4096
	}
	for {
		b, err := r.br.ReadByte()
		if err == io.EOF {
			if strings.TrimSpace(sb.String()) == "" {
				return "", io.EOF
			}
			return "", fmt.Errorf("nexus: unterminated statement %q", truncate(sb.String()))
		}
		if err != nil {
			return "", err
		}
		if b == '\n' {
			r.line++
		}
		read++
		if max > 0 && read == max+1 {
			sb.Reset() // stop buffering; keep scanning for the terminator
		}
		if max > 0 && read > max {
			if !inQuote && depth == 0 && b == ';' {
				return "", &StatementError{Line: startLine, Stmt: "(oversized)", Limit: true,
					Err: fmt.Errorf("statement exceeds %d-byte limit", max)}
			}
			// Track quote/comment state so an embedded ';' doesn't end the
			// drain early.
			switch {
			case inQuote:
				inQuote = b != '\''
			case depth > 0:
				if b == '[' {
					depth++
				} else if b == ']' {
					depth--
				}
			case b == '\'':
				inQuote = true
			case b == '[':
				depth++
			}
			continue
		}
		switch {
		case inQuote:
			sb.WriteByte(b)
			if b == '\'' {
				// Doubled quote = escaped; peek.
				nb, err := r.br.ReadByte()
				if err == nil {
					if nb == '\'' {
						sb.WriteByte(nb)
					} else {
						r.br.UnreadByte()
						inQuote = false
					}
				} else {
					inQuote = false
				}
			}
		case depth > 0:
			switch b {
			case '[':
				depth++
			case ']':
				depth--
			}
		case b == '[':
			depth++
		case b == '\'':
			inQuote = true
			sb.WriteByte(b)
		case b == ';':
			return strings.TrimSpace(sb.String()), nil
		default:
			sb.WriteByte(b)
		}
	}
}

func truncate(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

func keywordOf(stmt string) string {
	fields := strings.Fields(stmt)
	if len(fields) == 0 {
		return ""
	}
	return strings.ToUpper(fields[0])
}

// parseTranslate fills the token→label map from a TRANSLATE statement:
// "TRANSLATE 1 Homo_sapiens, 2 'Pan troglodytes', ...".
func (r *Reader) parseTranslate(stmt string) error {
	body := strings.TrimSpace(stmt[len("TRANSLATE"):])
	r.translate = make(map[string]string)
	for _, pair := range splitTopLevel(body, ',') {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		tok, label, err := splitPair(pair)
		if err != nil {
			return err
		}
		if _, dup := r.translate[tok]; dup {
			return fmt.Errorf("nexus: duplicate translate token %q", tok)
		}
		r.translate[tok] = label
	}
	return nil
}

// splitPair separates "token label" respecting quoted labels.
func splitPair(s string) (string, string, error) {
	i := strings.IndexAny(s, " \t\n\r")
	if i < 0 {
		return "", "", fmt.Errorf("nexus: malformed translate entry %q", s)
	}
	tok := s[:i]
	label := strings.TrimSpace(s[i:])
	if label == "" {
		return "", "", fmt.Errorf("nexus: translate entry %q has no label", s)
	}
	if label[0] == '\'' {
		unq, err := unquote(label)
		if err != nil {
			return "", "", err
		}
		return tok, unq, nil
	}
	return tok, strings.ReplaceAll(label, "_", " "), nil
}

func unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return "", fmt.Errorf("nexus: malformed quoted label %q", s)
	}
	return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
}

// splitTopLevel splits on sep outside quotes.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b == '\'':
			inQuote = !inQuote
			cur.WriteByte(b)
		case b == sep && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(b)
		}
	}
	out = append(out, cur.String())
	return out
}

// parseTree handles "TREE name = [&U] (...)" (the ';' was consumed by the
// statement reader). Failures are *StatementError: the statement is fully
// consumed, so lenient callers can keep reading.
func (r *Reader) parseTree(stmt string) (*tree.Tree, error) {
	eq := strings.Index(stmt, "=")
	if eq < 0 {
		return nil, &StatementError{Line: r.line, Stmt: truncate(stmt),
			Err: fmt.Errorf("TREE statement without '='")}
	}
	body := strings.TrimSpace(stmt[eq+1:])
	// Comments (incl. [&U]/[&R]) were already stripped by readStatement.
	nr := newick.NewReader(strings.NewReader(body + ";"))
	nr.SetLimits(r.limits)
	t, err := nr.Read()
	if err != nil {
		var pe *newick.ParseError
		limit := false
		if errors.As(err, &pe) {
			limit = pe.Limit
		}
		return nil, &StatementError{Line: r.line, Stmt: truncate(stmt), Err: err, Limit: limit}
	}
	if len(r.translate) > 0 {
		var terr error
		t.Postorder(func(n *tree.Node) {
			if terr != nil || !n.IsLeaf() {
				return
			}
			if label, ok := r.translate[n.Name]; ok {
				n.Name = label
				return
			}
			// Tokens in translate files are usually numeric; a leaf not in
			// the table keeps its literal name (PAUP allows mixing).
		})
		if terr != nil {
			return nil, terr
		}
	}
	return t, nil
}
