package nexus

import (
	"strings"
	"testing"
)

// FuzzParse feeds the NEXUS reader arbitrary input: it must reach EOF or
// a clean error without panicking or yielding nil trees, whatever the
// block structure, translate table, or comment nesting looks like. Run
// the corpus with `go test`; explore with `go test -fuzz=FuzzParse
// ./internal/nexus` (ci.sh does a 10-second smoke run).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"#NEXUS\nBEGIN TREES;\nTREE t1 = (a,b);\nEND;\n",
		"#NEXUS\nbegin trees;\n tree a = [&U] ((1,2),3);\nend;\n",
		"#NEXUS\nBEGIN TREES;\nTRANSLATE 1 Homo_sapiens, 2 Pan, 3 'Gorilla gorilla';\nTREE t = ((1,2),3);\nEND;",
		"#NEXUS\n[comment [nested]]\nBEGIN TAXA;\nEND;\nBEGIN TREES;\nTREE x = (a:0.1,b:0.2);\nEND;\n",
		"#NEXUS\nBEGIN TREES;\nTREE bad = ((a,b);\nEND;\n",
		"#NEXUS\nBEGIN TREES;\nEND;\n",
		"not nexus at all",
		"#NEXUS",
		"#NEXUS\nBEGIN TREES;\nTREE t1 = (a,b);\nTREE t2 = (c,d);\nTREE t3 = ((a,c),(b,d));\nEND;\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		r := NewReader(strings.NewReader(input))
		count := 0
		for count < 1<<12 {
			tr, err := r.Read()
			if err != nil {
				if tr != nil {
					t.Fatalf("Read returned both tree and error: %v", err)
				}
				break
			}
			if tr == nil || tr.Root == nil {
				t.Fatal("Read returned nil tree without error")
			}
			count++
		}
		if got := r.TreesRead(); got != count && count < 1<<12 {
			t.Fatalf("TreesRead = %d, yielded %d", got, count)
		}
	})
}
