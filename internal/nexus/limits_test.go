package nexus

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/newick"
)

const lenientSrc = `#NEXUS
BEGIN TREES;
  TREE one = (a,(b,c));
  TREE bad = (a,,b);
  TREE two = ((a,b),c);
END;
`

func TestStatementErrorIsRecoverable(t *testing.T) {
	r := NewReader(strings.NewReader(lenientSrc))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first tree: %v", err)
	}
	_, err := r.Read()
	var se *StatementError
	if !errors.As(err, &se) {
		t.Fatalf("malformed TREE gave %T (%v), want *StatementError", err, err)
	}
	if se.Line == 0 || !strings.Contains(se.Stmt, "TREE bad") {
		t.Fatalf("diagnostics incomplete: %+v", se)
	}
	// The statement was consumed; reading continues at the next tree.
	tr, err := r.Read()
	if err != nil {
		t.Fatalf("tree after StatementError: %v", err)
	}
	if tr.NumLeaves() != 3 {
		t.Fatalf("wrong tree after recovery: %d leaves", tr.NumLeaves())
	}
	if r.TreesRead() != 2 {
		t.Fatalf("TreesRead = %d, want 2", r.TreesRead())
	}
}

func TestOversizedStatementDrained(t *testing.T) {
	big := "TREE huge = (" + strings.Repeat("a,", 4000) + "b);"
	src := "#NEXUS\nBEGIN TREES;\n" + big + "\nTREE ok = (a,b);\nEND;\n"
	r := NewReader(strings.NewReader(src))
	r.SetLimits(newick.Limits{MaxTreeBytes: 256})
	_, err := r.Read()
	var se *StatementError
	if !errors.As(err, &se) || !se.Limit {
		t.Fatalf("oversized statement gave %v, want limit StatementError", err)
	}
	tr, err := r.Read()
	if err != nil || tr.NumLeaves() != 2 {
		t.Fatalf("tree after oversized statement: %v, %v", tr, err)
	}
}

func TestMaxTaxaThroughNexus(t *testing.T) {
	r := NewReader(strings.NewReader(lenientSrc))
	r.SetLimits(newick.Limits{MaxTaxa: 2})
	_, err := r.Read()
	var se *StatementError
	if !errors.As(err, &se) || !se.Limit {
		t.Fatalf("over-taxa tree gave %v, want limit StatementError", err)
	}
}
