// Package seqrf implements the paper's baseline engines: the generic
// sequential average-RF algorithm (Algorithm 1, "DendropySingle"/DS) and
// its tree-level parallelization ("DendropySingleMP"/DSMP).
//
// Both load the reference collection R — every tree's bipartition set —
// into memory, then dynamically stream the query collection Q, computing
// the q×r pairwise symmetric differences. Time O(n²qr), space O(n²r),
// exactly the trade-off the paper ascribes to these baselines (Table I).
package seqrf

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Options configure the baseline engines.
type Options struct {
	// Taxa is the shared taxon catalogue (required).
	Taxa *taxa.Set
	// Workers is the number of parallel workers over query trees.
	// 1 (or 0) selects the sequential DS behaviour; >1 selects DSMP.
	Workers int
	// Filter optionally drops bipartitions before comparison.
	Filter bipart.Filter
}

func (o *Options) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// AverageRF computes, for each query tree in q, the average RF distance to
// every reference tree in r (paper Algorithm 1). Results are returned in
// query order.
func AverageRF(q, r collection.Source, opts Options) ([]float64, error) {
	if opts.Taxa == nil {
		return nil, fmt.Errorf("seqrf: Options.Taxa is required")
	}
	ex := bipart.NewExtractor(opts.Taxa)
	ex.Filter = opts.Filter

	// Load the reference collection: all bipartition sets resident,
	// matching the paper's DS/DSMP implementation.
	refSets, err := loadReference(r, ex)
	if err != nil {
		return nil, err
	}
	if len(refSets) == 0 {
		return nil, fmt.Errorf("seqrf: reference collection is empty")
	}

	if err := q.Reset(); err != nil {
		return nil, err
	}
	workers := clampWorkers(opts.workers(), len(refSets))
	if workers == 1 {
		return sequential(q, refSets, ex)
	}
	return parallel(q, refSets, ex, workers)
}

// clampWorkers limits the DSMP worker count to what the workload can keep
// busy: each query job costs one comparison per reference tree, so a small
// reference collection makes jobs too cheap to amortize channel handoff
// and DSMP loses to DS (BENCH_0001: DSMP8 210ms vs DS 203ms on a 289-tree
// slice). Delegating to collection.EffectiveWorkers keeps one clamp rule
// for every engine.
func clampWorkers(requested, refTrees int) int {
	return collection.EffectiveWorkers(requested, refTrees)
}

func loadReference(r collection.Source, ex *bipart.Extractor) ([]*bipart.Set, error) {
	if err := r.Reset(); err != nil {
		return nil, err
	}
	var sets []*bipart.Set
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		bs, err := ex.Extract(t)
		if err != nil {
			return nil, fmt.Errorf("seqrf: reference tree %d: %w", len(sets), err)
		}
		sets = append(sets, bipart.SetOf(bs))
	}
	return sets, nil
}

// sequential is the double loop of Algorithm 1.
func sequential(q collection.Source, refSets []*bipart.Set, ex *bipart.Extractor) ([]float64, error) {
	var out []float64
	for {
		t, err := q.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		qs, err := ex.Extract(t)
		if err != nil {
			return nil, fmt.Errorf("seqrf: query tree %d: %w", len(out), err)
		}
		out = append(out, averageAgainst(bipart.SetOf(qs), refSets))
	}
}

func averageAgainst(qset *bipart.Set, refSets []*bipart.Set) float64 {
	sum := 0
	for _, rs := range refSets {
		sum += qset.SymmetricDifferenceSize(rs)
	}
	return float64(sum) / float64(len(refSets))
}

// parallel distributes query trees over a worker pool, the tree-level
// parallelization the paper applies in DSMP. Each worker owns its
// extractor and result buffer; nothing is shared on the hot path.
func parallel(q collection.Source, refSets []*bipart.Set, ex *bipart.Extractor, workers int) ([]float64, error) {
	if workers > runtime.GOMAXPROCS(0)*4 {
		workers = runtime.GOMAXPROCS(0) * 4
	}
	type job struct {
		idx int
		t   *tree.Tree
	}
	type scored struct {
		idx int
		avg float64
	}
	jobs := make(chan job, workers*2)
	outs := make([][]scored, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wex := &bipart.Extractor{
				Taxa:            ex.Taxa,
				IncludeTrivial:  ex.IncludeTrivial,
				RequireComplete: ex.RequireComplete,
				Filter:          ex.Filter,
			}
			for j := range jobs {
				qs, err := wex.Extract(j.t)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("seqrf: query tree %d: %w", j.idx, err)
					}
					continue
				}
				outs[w] = append(outs[w], scored{j.idx, averageAgainst(bipart.SetOf(qs), refSets)})
			}
		}(w)
	}
	idx := 0
	var feedErr error
	for {
		t, err := q.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		jobs <- job{idx: idx, t: t}
		idx++
	}
	close(jobs)
	wg.Wait()
	if feedErr != nil {
		return nil, feedErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	results := make([]float64, idx)
	for _, part := range outs {
		for _, s := range part {
			results[s.idx] = s.avg
		}
	}
	return results, nil
}

// PairwiseRF computes the plain RF distance between two trees by explicit
// bipartition-set symmetric difference — the textbook O(n²) method the
// baselines are built on. Exposed for tests and the public API.
func PairwiseRF(t1, t2 *tree.Tree, ts *taxa.Set) (int, error) {
	ex := bipart.NewExtractor(ts)
	b1, err := ex.Extract(t1)
	if err != nil {
		return 0, err
	}
	b2, err := ex.Extract(t2)
	if err != nil {
		return 0, err
	}
	return bipart.SetOf(b1).SymmetricDifferenceSize(bipart.SetOf(b2)), nil
}
