package seqrf

import (
	"math/rand"
	"testing"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

var abcd = taxa.MustNewSet([]string{"A", "B", "C", "D"})

func TestPaperExample(t *testing.T) {
	q := collection.FromTrees([]*tree.Tree{newick.MustParse("((A,B),(C,D));")})
	r := collection.FromTrees([]*tree.Tree{newick.MustParse("((D,B),(C,A));")})
	got, err := AverageRF(q, r, Options{Taxa: abcd})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("avg RF = %v, want [2]", got)
	}
}

func TestAverageOverCollection(t *testing.T) {
	// Reference: two copies of T and one of T' → avg RF of T = (0+0+2)/3.
	tT := "((A,B),(C,D));"
	tP := "((D,B),(C,A));"
	q := collection.FromTrees([]*tree.Tree{newick.MustParse(tT)})
	r := collection.FromTrees([]*tree.Tree{
		newick.MustParse(tT), newick.MustParse(tT), newick.MustParse(tP),
	})
	got, err := AverageRF(q, r, Options{Taxa: abcd})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 3.0
	if len(got) != 1 || !approxEq(got[0], want) {
		t.Errorf("avg RF = %v, want %v", got, want)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestSelfCollection(t *testing.T) {
	// Q = R: the average must include the zero self-distance.
	trees := []*tree.Tree{
		newick.MustParse("((A,B),(C,D));"),
		newick.MustParse("((A,C),(B,D));"),
		newick.MustParse("((A,D),(B,C));"),
	}
	got, err := AverageRF(collection.FromTrees(trees), collection.FromTrees(trees), Options{Taxa: abcd})
	if err != nil {
		t.Fatal(err)
	}
	// Each pair of distinct quartet topologies has RF 2; avg = 4/3.
	for i, g := range got {
		if !approxEq(g, 4.0/3.0) {
			t.Errorf("avg[%d] = %v, want 4/3", i, g)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	n, rN, qN := 16, 30, 12
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(99))
	var refs, queries []*tree.Tree
	for i := 0; i < rN; i++ {
		refs = append(refs, simphy.RandomBinary(ts, rng))
	}
	for i := 0; i < qN; i++ {
		queries = append(queries, simphy.RandomBinary(ts, rng))
	}
	seq, err := AverageRF(collection.FromTrees(queries), collection.FromTrees(refs), Options{Taxa: ts, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AverageRF(collection.FromTrees(queries), collection.FromTrees(refs), Options{Taxa: ts, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !approxEq(seq[i], par[i]) {
			t.Errorf("query %d: sequential %v vs parallel %v", i, seq[i], par[i])
		}
	}
}

func TestAgreesWithDayOracle(t *testing.T) {
	n, rN := 20, 15
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(7))
	var refs []*tree.Tree
	for i := 0; i < rN; i++ {
		refs = append(refs, simphy.RandomBinary(ts, rng))
	}
	query := simphy.RandomBinary(ts, rng)
	got, err := AverageRF(
		collection.FromTrees([]*tree.Tree{query}),
		collection.FromTrees(refs),
		Options{Taxa: ts},
	)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, ref := range refs {
		sum += day.MustRF(query, ref)
	}
	want := float64(sum) / float64(rN)
	if !approxEq(got[0], want) {
		t.Errorf("seqrf = %v, Day oracle = %v", got[0], want)
	}
}

func TestErrors(t *testing.T) {
	q := collection.FromTrees([]*tree.Tree{newick.MustParse("((A,B),(C,D));")})
	empty := collection.FromTrees(nil)
	if _, err := AverageRF(q, empty, Options{Taxa: abcd}); err == nil {
		t.Error("empty reference collection should fail")
	}
	if _, err := AverageRF(q, q, Options{}); err == nil {
		t.Error("missing taxa should fail")
	}
	bad := collection.FromTrees([]*tree.Tree{newick.MustParse("((A,B),(C,X));")})
	if _, err := AverageRF(q, bad, Options{Taxa: abcd}); err == nil {
		t.Error("reference tree with unknown taxon should fail")
	}
	if _, err := AverageRF(bad, q, Options{Taxa: abcd}); err == nil {
		t.Error("query tree with unknown taxon should fail")
	}
	if _, err := AverageRF(bad, q, Options{Taxa: abcd, Workers: 4}); err == nil {
		t.Error("parallel query tree with unknown taxon should fail")
	}
}

func TestFilterChangesDistances(t *testing.T) {
	six := taxa.Generate(6)
	rng := rand.New(rand.NewSource(3))
	var trees []*tree.Tree
	for i := 0; i < 8; i++ {
		trees = append(trees, simphy.RandomBinary(six, rng))
	}
	src := collection.FromTrees(trees)
	plain, err := AverageRF(src, src, Options{Taxa: six})
	if err != nil {
		t.Fatal(err)
	}
	// Filter everything out: all distances become 0.
	all, err := AverageRF(src, src, Options{Taxa: six, Filter: func(bipart.Bipartition) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if all[i] != 0 {
			t.Errorf("filtered-out avg[%d] = %v, want 0", i, all[i])
		}
	}
	_ = plain
}

func TestPairwiseRF(t *testing.T) {
	d, err := PairwiseRF(newick.MustParse("((A,B),(C,D));"), newick.MustParse("((D,B),(C,A));"), abcd)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("PairwiseRF = %d, want 2", d)
	}
}

// TestClampWorkers pins the DSMP small-workload clamp (the BENCH_0001 fix:
// DSMP8 lost to DS on a 289-tree reference slice; the clamp turns that
// request into 4 workers).
func TestClampWorkers(t *testing.T) {
	cases := []struct {
		requested, refTrees, want int
	}{
		{8, 289, 4},
		{8, 63, 1},
		{8, 10000, 8},
		{2, 289, 2},
	}
	for _, c := range cases {
		if got := clampWorkers(c.requested, c.refTrees); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d",
				c.requested, c.refTrees, got, c.want)
		}
	}
}

// TestParallelMatchesSequentialSmall drives a workload small enough that
// the clamp collapses DSMP to the sequential path and verifies results
// stay identical to an unclamped parallel run on a bigger one.
func TestParallelMatchesSequentialSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ts := taxa.Generate(12)
	var trees []*tree.Tree
	for i := 0; i < 30; i++ {
		trees = append(trees, simphy.RandomBinary(ts, rng))
	}
	src := collection.FromTrees(trees)
	seq, err := AverageRF(src, src, Options{Taxa: ts, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AverageRF(src, src, Options{Taxa: ts, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("tree %d: sequential %v vs clamped-parallel %v", i, seq[i], par[i])
		}
	}
}
