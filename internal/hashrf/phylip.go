package hashrf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PHYLIP square distance-matrix interchange, the format R's ape and the
// PHYLIP tools consume — so all-vs-all RF matrices computed here feed
// directly into downstream neighbour-joining, MDS, or plotting pipelines.

// WritePhylip serializes the matrix in PHYLIP square format. Names label
// the rows; if nil, T0, T1, … are used. Names are padded to the classic
// 10-character field (longer names are kept whole followed by two spaces,
// the "relaxed PHYLIP" convention).
func (m *Matrix) WritePhylip(w io.Writer, names []string) error {
	if names != nil && len(names) != m.R {
		return fmt.Errorf("hashrf: %d names for %d trees", len(names), m.R)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%5d\n", m.R)
	for i := 0; i < m.R; i++ {
		name := fmt.Sprintf("T%d", i)
		if names != nil {
			name = names[i]
		}
		if strings.ContainsAny(name, " \t\n\r") {
			return fmt.Errorf("hashrf: name %q contains whitespace", name)
		}
		if len(name) < 10 {
			fmt.Fprintf(bw, "%-10s", name)
		} else {
			bw.WriteString(name)
			bw.WriteString("  ")
		}
		for j := 0; j < m.R; j++ {
			if j > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.Itoa(m.At(i, j)))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadPhylip parses a PHYLIP square distance matrix (as written by
// WritePhylip or by other tools using integer distances). It returns the
// matrix and the row names.
func ReadPhylip(r io.Reader) (*Matrix, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("hashrf: empty PHYLIP input")
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || n < 1 {
		return nil, nil, fmt.Errorf("hashrf: bad PHYLIP header %q", sc.Text())
	}
	m := newMatrix(n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, nil, fmt.Errorf("hashrf: PHYLIP input ends at row %d of %d", i, n)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != n+1 {
			return nil, nil, fmt.Errorf("hashrf: row %d has %d fields, want %d", i, len(fields), n+1)
		}
		names[i] = fields[0]
		for j := 0; j < n; j++ {
			v, err := strconv.Atoi(fields[j+1])
			if err != nil {
				return nil, nil, fmt.Errorf("hashrf: row %d col %d: %w", i, j, err)
			}
			switch {
			case i == j:
				if v != 0 {
					return nil, nil, fmt.Errorf("hashrf: nonzero diagonal at %d: %d", i, v)
				}
			case j > i:
				m.set(i, j, v)
			default: // symmetric check
				if m.At(i, j) != v {
					return nil, nil, fmt.Errorf("hashrf: matrix not symmetric at (%d,%d): %d vs %d",
						i, j, v, m.At(i, j))
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return m, names, nil
}
