package hashrf

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	ts := taxa.Generate(10)
	rng := rand.New(rand.NewSource(6))
	trees := make([]*tree.Tree, 5)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	m, err := AllVsAll(collection.FromTrees(trees), Options{Taxa: ts})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPhylipRoundTrip(t *testing.T) {
	m := smallMatrix(t)
	var sb strings.Builder
	if err := m.WritePhylip(&sb, nil); err != nil {
		t.Fatal(err)
	}
	got, names, err := ReadPhylip(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if got.R != m.R {
		t.Fatalf("R = %d, want %d", got.R, m.R)
	}
	for i := 0; i < m.R; i++ {
		if names[i] != "T"+string(rune('0'+i)) {
			t.Errorf("names[%d] = %q", i, names[i])
		}
		for j := 0; j < m.R; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Errorf("(%d,%d): %d vs %d", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestPhylipCustomAndLongNames(t *testing.T) {
	m := smallMatrix(t)
	names := []string{"alpha", "averyveryverylongname", "c", "d", "e"}
	var sb strings.Builder
	if err := m.WritePhylip(&sb, names); err != nil {
		t.Fatal(err)
	}
	_, gotNames, err := ReadPhylip(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if gotNames[i] != names[i] {
			t.Errorf("names[%d] = %q, want %q", i, gotNames[i], names[i])
		}
	}
}

func TestPhylipWriteErrors(t *testing.T) {
	m := smallMatrix(t)
	var sb strings.Builder
	if err := m.WritePhylip(&sb, []string{"too", "few"}); err == nil {
		t.Error("wrong name count should fail")
	}
	if err := m.WritePhylip(&sb, []string{"has space", "b", "c", "d", "e"}); err == nil {
		t.Error("whitespace in a name should fail")
	}
}

func TestPhylipReadErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"abc\n",               // bad header
		"2\nT0 0 1\n",         // missing row
		"2\nT0 0\nT1 0 0\n",   // short row
		"2\nT0 0 x\nT1 x 0\n", // non-integer
		"2\nT0 1 2\nT1 2 1\n", // nonzero diagonal
		"2\nT0 0 2\nT1 3 0\n", // asymmetric
	}
	for i, c := range cases {
		if _, _, err := ReadPhylip(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail:\n%s", i, c)
		}
	}
}
