// Package hashrf reimplements the HashRF baseline (Sul & Williams 2008)
// the paper compares against: an all-versus-all RF matrix over a single
// tree collection, computed through an inverted index from bipartition to
// the list of trees containing it.
//
// The defining costs the paper measures are reproduced structurally:
//
//   - the full r×r matrix is materialized (upper triangle), giving the
//     O(n²r²) space growth of Table I and the instability at large r;
//   - every bipartition shared by k trees costs k(k−1)/2 pair updates,
//     giving the super-linear runtime of Fig. 2 as collections grow and
//     bipartitions become common;
//   - only one collection is accepted (Q is R), the restriction the paper
//     lists under extensibility (§VII.D);
//   - input without branch lengths is rejected by default, mirroring the
//     paper's observation that HashRF "could not read" the unweighted
//     Insect data (§VI.B) — set AcceptUnweighted to lift this.
//
// Unlike the original (which compresses bipartitions through m-bit hash
// functions and accepts a small collision probability), this
// reimplementation keys the index by exact canonical bitmasks, so results
// are always exact; the paper ran HashRF "with options to reduce collisions
// as much as allowed" and observed no accuracy differences either.
package hashrf

import (
	"fmt"
	"io"
	"math"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/taxa"
)

// Options configure the HashRF engine.
type Options struct {
	// Taxa is the shared taxon catalogue (required).
	Taxa *taxa.Set
	// AcceptUnweighted allows trees without branch lengths. Off by default
	// to mirror the original tool's observed behaviour on the Insect data.
	AcceptUnweighted bool
	// Filter optionally drops bipartitions before indexing.
	Filter bipart.Filter
	// MaxMatrixCells aborts (with an error) when r(r−1)/2 exceeds this
	// bound, standing in for the kernel OOM kills the paper reports at
	// large r. Zero means no bound.
	MaxMatrixCells int
}

// Matrix is the all-versus-all RF result. Distances are stored as a packed
// upper triangle of uint16 (RF ≤ 2(n−3) < 65536 for any practical n).
type Matrix struct {
	R   int
	tri []uint16
}

func newMatrix(r int) *Matrix {
	return &Matrix{R: r, tri: make([]uint16, r*(r-1)/2)}
}

// triIndex maps i<j to the packed triangle offset.
func (m *Matrix) triIndex(i, j int) int {
	// Row i occupies (R-1) + (R-2) + … sequentially; standard formula.
	return i*(2*m.R-i-1)/2 + (j - i - 1)
}

// At returns RF(i, j). At(i, i) is 0.
func (m *Matrix) At(i, j int) int {
	if i == j {
		return 0
	}
	if j < i {
		i, j = j, i
	}
	return int(m.tri[m.triIndex(i, j)])
}

func (m *Matrix) set(i, j int, v int) error {
	if v < 0 || v > math.MaxUint16 {
		return fmt.Errorf("hashrf: RF(%d,%d) = %d out of uint16 range — collection exceeds the packed matrix's representable distances", i, j, v)
	}
	m.tri[m.triIndex(i, j)] = uint16(v)
	return nil
}

// RowAverages returns, for each tree, the mean RF distance to every tree in
// the collection (the self-distance 0 included, matching how averaging a
// HashRF matrix compares with BFHRF when Q is R).
func (m *Matrix) RowAverages() []float64 {
	sums := make([]int64, m.R)
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.R; j++ {
			d := int64(m.tri[m.triIndex(i, j)])
			sums[i] += d
			sums[j] += d
		}
	}
	out := make([]float64, m.R)
	for i, s := range sums {
		out[i] = float64(s) / float64(m.R)
	}
	return out
}

// AllVsAll computes the r×r RF matrix of the collection.
func AllVsAll(r collection.Source, opts Options) (*Matrix, error) {
	if opts.Taxa == nil {
		return nil, fmt.Errorf("hashrf: Options.Taxa is required")
	}
	ex := bipart.NewExtractor(opts.Taxa)
	ex.Filter = opts.Filter

	// Phase 1: load the collection, building the inverted index
	// bipartition → tree IDs, plus per-tree bipartition counts.
	if err := r.Reset(); err != nil {
		return nil, err
	}
	index := make(map[string][]int32)
	var counts []int32
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		id := int32(len(counts))
		bs, err := ex.Extract(t)
		if err != nil {
			return nil, fmt.Errorf("hashrf: tree %d: %w", id, err)
		}
		if !opts.AcceptUnweighted {
			for _, b := range bs {
				if !b.HasLength {
					return nil, fmt.Errorf("hashrf: tree %d has no branch lengths; HashRF requires weighted input (set AcceptUnweighted to override)", id)
				}
			}
		}
		counts = append(counts, int32(len(bs)))
		for _, b := range bs {
			k := b.Key()
			index[k] = append(index[k], id)
		}
	}
	rN := len(counts)
	if rN == 0 {
		return nil, fmt.Errorf("hashrf: collection is empty")
	}
	if opts.MaxMatrixCells > 0 && rN*(rN-1)/2 > opts.MaxMatrixCells {
		return nil, fmt.Errorf("hashrf: matrix of %d trees needs %d cells, over the configured bound %d (simulated OOM)",
			rN, rN*(rN-1)/2, opts.MaxMatrixCells)
	}

	// Phase 2: the O(Σ k²) pair sweep. shared(i,j) counts bipartitions in
	// both trees; it is accumulated directly into the triangle.
	m := newMatrix(rN)
	shared := m.tri // reuse storage: first accumulate shared counts
	for _, ids := range index {
		for a := 0; a < len(ids); a++ {
			ia := ids[a]
			for b := a + 1; b < len(ids); b++ {
				shared[m.triIndex(int(ia), int(ids[b]))]++
			}
		}
	}

	// Phase 3: RF(i,j) = |B(i)| + |B(j)| − 2·shared(i,j).
	for i := 0; i < rN; i++ {
		for j := i + 1; j < rN; j++ {
			s := int(shared[m.triIndex(i, j)])
			if err := m.set(i, j, int(counts[i])+int(counts[j])-2*s); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// AverageRF runs AllVsAll and reduces to per-tree averages, the quantity
// the paper extracts from HashRF for comparison with BFHRF.
func AverageRF(r collection.Source, opts Options) ([]float64, error) {
	m, err := AllVsAll(r, opts)
	if err != nil {
		return nil, err
	}
	return m.RowAverages(), nil
}
