package hashrf

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

var abcd = taxa.MustNewSet([]string{"A", "B", "C", "D"})

func weighted(nwk string) *tree.Tree {
	t := newick.MustParse(nwk)
	t.Postorder(func(n *tree.Node) {
		if n.Parent != nil {
			n.Length, n.HasLength = 1, true
		}
	})
	return t
}

func TestMatrixAgainstDay(t *testing.T) {
	n, rN := 14, 20
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(5))
	var trees []*tree.Tree
	for i := 0; i < rN; i++ {
		trees = append(trees, simphy.RandomBinary(ts, rng))
	}
	m, err := AllVsAll(collection.FromTrees(trees), Options{Taxa: ts})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rN; i++ {
		for j := 0; j < rN; j++ {
			want := day.MustRF(trees[i], trees[j])
			if got := m.At(i, j); got != want {
				t.Fatalf("RF(%d,%d) = %d, Day = %d", i, j, got, want)
			}
		}
	}
}

func TestRowAverages(t *testing.T) {
	trees := []*tree.Tree{
		weighted("((A,B),(C,D));"),
		weighted("((A,C),(B,D));"),
		weighted("((A,B),(C,D));"),
	}
	m, err := AllVsAll(collection.FromTrees(trees), Options{Taxa: abcd})
	if err != nil {
		t.Fatal(err)
	}
	avgs := m.RowAverages()
	// Tree 0: distances 0, 2, 0 → 2/3. Tree 1: 2, 0, 2 → 4/3.
	if !close(avgs[0], 2.0/3.0) || !close(avgs[1], 4.0/3.0) || !close(avgs[2], 2.0/3.0) {
		t.Errorf("averages = %v", avgs)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestRejectsUnweighted(t *testing.T) {
	trees := []*tree.Tree{newick.MustParse("((A,B),(C,D));"), newick.MustParse("((A,C),(B,D));")}
	_, err := AllVsAll(collection.FromTrees(trees), Options{Taxa: abcd})
	if err == nil {
		t.Fatal("unweighted input should be rejected by default (paper §VI.B)")
	}
	if !strings.Contains(err.Error(), "branch length") {
		t.Errorf("error should mention branch lengths: %v", err)
	}
	// With AcceptUnweighted it must work.
	m, err := AllVsAll(collection.FromTrees(trees), Options{Taxa: abcd, AcceptUnweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 {
		t.Errorf("RF = %d, want 2", m.At(0, 1))
	}
}

func TestMatrixBound(t *testing.T) {
	ts := taxa.Generate(8)
	rng := rand.New(rand.NewSource(2))
	var trees []*tree.Tree
	for i := 0; i < 50; i++ {
		trees = append(trees, simphy.RandomBinary(ts, rng))
	}
	_, err := AllVsAll(collection.FromTrees(trees), Options{Taxa: ts, AcceptUnweighted: true, MaxMatrixCells: 100})
	if err == nil || !strings.Contains(err.Error(), "simulated OOM") {
		t.Errorf("expected simulated OOM, got %v", err)
	}
}

func TestEmptyCollection(t *testing.T) {
	if _, err := AllVsAll(collection.FromTrees(nil), Options{Taxa: abcd}); err == nil {
		t.Error("empty collection should fail")
	}
	if _, err := AllVsAll(collection.FromTrees(nil), Options{}); err == nil {
		t.Error("missing taxa should fail")
	}
}

func TestTriangleIndexing(t *testing.T) {
	m := newMatrix(5)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			idx := m.triIndex(i, j)
			if idx < 0 || idx >= len(m.tri) {
				t.Fatalf("triIndex(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("triIndex(%d,%d) = %d collides", i, j, idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != len(m.tri) {
		t.Errorf("triangle not fully covered: %d of %d", len(seen), len(m.tri))
	}
	// Symmetric access.
	m.set(1, 3, 7)
	if m.At(3, 1) != 7 || m.At(1, 3) != 7 {
		t.Error("At not symmetric")
	}
	if m.At(2, 2) != 0 {
		t.Error("diagonal must be 0")
	}
}

func TestAverageRFMatchesMatrix(t *testing.T) {
	ts := taxa.Generate(10)
	rng := rand.New(rand.NewSource(11))
	var trees []*tree.Tree
	for i := 0; i < 12; i++ {
		trees = append(trees, simphy.RandomBinary(ts, rng))
	}
	src := collection.FromTrees(trees)
	avgs, err := AverageRF(src, Options{Taxa: ts, AcceptUnweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := AllVsAll(src, Options{Taxa: ts, AcceptUnweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	want := m.RowAverages()
	for i := range avgs {
		if !close(avgs[i], want[i]) {
			t.Errorf("avg[%d] = %v, want %v", i, avgs[i], want[i])
		}
	}
}
