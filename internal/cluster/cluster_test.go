package cluster

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/hashrf"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// fakeMatrix is a Distances over an explicit table.
type fakeMatrix [][]int

func (m fakeMatrix) At(i, j int) int { return m[i][j] }

// twoBlobs: items 0-2 mutually close (distance 1), items 3-5 mutually
// close, 10 apart across groups.
func twoBlobs() fakeMatrix {
	n := 6
	m := make(fakeMatrix, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			switch {
			case i == j:
				m[i][j] = 0
			case (i < 3) == (j < 3):
				m[i][j] = 1
			default:
				m[i][j] = 10
			}
		}
	}
	return m
}

func TestBuildAndCutTwoBlobs(t *testing.T) {
	for _, lk := range []Linkage{Single, Complete, Average} {
		dd, err := Build(twoBlobs(), 6, lk)
		if err != nil {
			t.Fatalf("%v: %v", lk, err)
		}
		if len(dd.Merges) != 5 {
			t.Fatalf("%v: merges = %d, want 5", lk, len(dd.Merges))
		}
		labels, err := dd.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		if labels[0] != labels[1] || labels[1] != labels[2] {
			t.Errorf("%v: first blob split: %v", lk, labels)
		}
		if labels[3] != labels[4] || labels[4] != labels[5] {
			t.Errorf("%v: second blob split: %v", lk, labels)
		}
		if labels[0] == labels[3] {
			t.Errorf("%v: blobs merged at k=2: %v", lk, labels)
		}
	}
}

func TestCutBounds(t *testing.T) {
	dd, err := Build(twoBlobs(), 6, Single)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dd.Cut(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := dd.Cut(7); err == nil {
		t.Error("k>n should fail")
	}
	all, err := dd.Cut(6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range all {
		seen[l] = true
	}
	if len(seen) != 6 {
		t.Errorf("k=n should give singletons, got %v", all)
	}
	one, err := dd.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range one {
		if l != 0 {
			t.Errorf("k=1 should give one cluster: %v", one)
		}
	}
}

func TestCutByDistance(t *testing.T) {
	dd, err := Build(twoBlobs(), 6, Single)
	if err != nil {
		t.Fatal(err)
	}
	labels := dd.CutByDistance(5) // within-blob merges (distance 1) happen
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) != 2 {
		t.Errorf("CutByDistance(5) clusters = %d, want 2 (%v)", len(distinct), labels)
	}
}

func TestMergeDistancesMonotoneSingle(t *testing.T) {
	dd, err := Build(twoBlobs(), 6, Single)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dd.Merges); i++ {
		if dd.Merges[i].Distance < dd.Merges[i-1].Distance {
			t.Errorf("single-linkage merges not monotone: %v", dd.Merges)
		}
	}
}

func TestSilhouette(t *testing.T) {
	m := twoBlobs()
	good := []int{0, 0, 0, 1, 1, 1}
	bad := []int{0, 1, 0, 1, 0, 1}
	sg := Silhouette(m, good)
	sb := Silhouette(m, bad)
	if sg <= sb {
		t.Errorf("silhouette(good)=%v should beat silhouette(bad)=%v", sg, sb)
	}
	if sg < 0.5 {
		t.Errorf("good clustering silhouette = %v, expected high", sg)
	}
}

func TestSingleItem(t *testing.T) {
	dd, err := Build(fakeMatrix{{0}}, 1, Average)
	if err != nil {
		t.Fatal(err)
	}
	if len(dd.Merges) != 0 {
		t.Error("single item produces no merges")
	}
	labels, err := dd.Cut(1)
	if err != nil || len(labels) != 1 || labels[0] != 0 {
		t.Errorf("labels = %v, err %v", labels, err)
	}
}

// TestRecoversTreeSources is the end-to-end use case: RF matrix over two
// pooled MSC collections, clustering recovers the source species trees.
func TestRecoversTreeSources(t *testing.T) {
	ts := taxa.Generate(16)
	a := simphy.NewMSCCollection(ts, 10, 1.0)
	simphy.ScaleMeanInternal(a.Species, 3)
	b := simphy.NewMSCCollection(ts, 20, 1.0)
	simphy.ScaleMeanInternal(b.Species, 3)
	var pooled []*tree.Tree
	var truth []int
	for i := 0; i < 15; i++ {
		pooled = append(pooled, a.Make(i))
		truth = append(truth, 0)
		pooled = append(pooled, b.Make(i))
		truth = append(truth, 1)
	}
	m, err := hashrf.AllVsAll(collection.FromTrees(pooled), hashrf.Options{Taxa: ts})
	if err != nil {
		t.Fatal(err)
	}
	for _, lk := range []Linkage{Single, Average} {
		dd, err := Build(m, m.R, lk)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := dd.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		agree := 0
		for i := range labels {
			if labels[i] == truth[i] {
				agree++
			}
		}
		if agree < len(labels)-agree {
			agree = len(labels) - agree
		}
		if agree < 27 { // ≥ 90% of 30
			t.Errorf("%v linkage recovered %d/30", lk, agree)
		}
	}
}
