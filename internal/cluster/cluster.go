// Package cluster implements agglomerative hierarchical clustering over RF
// distance matrices — the analysis the all-versus-all matrix exists for
// ("the all versus all RF matrix problem which is useful for clustering
// techniques", paper §VIII). Single, complete, and average linkage are
// provided; Cut extracts flat clusterings.
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects how the distance between merged clusters is computed.
type Linkage int

const (
	// Single linkage: minimum pairwise distance (chains easily).
	Single Linkage = iota
	// Complete linkage: maximum pairwise distance (compact clusters).
	Complete
	// Average linkage (UPGMA): unweighted mean pairwise distance.
	Average
)

// String names the linkage for diagnostics.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Distances is the minimal matrix view the clusterer needs; hashrf.Matrix
// satisfies it.
type Distances interface {
	At(i, j int) int
}

// Merge records one agglomeration step of the dendrogram. Cluster IDs
// 0..n-1 are the leaves; merge k creates cluster n+k.
type Merge struct {
	// A and B are the merged cluster IDs; Distance is their linkage
	// distance at merge time.
	A, B     int
	Distance float64
}

// Dendrogram is the full merge history for n items.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Build runs agglomerative clustering over the first n items of d.
func Build(d Distances, n int, linkage Linkage) (*Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 item, have %d", n)
	}
	// Working distance matrix between active clusters, plus sizes.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = float64(d.At(i, j))
		}
	}
	active := make([]int, n) // active[i] = current cluster ID at slot i
	size := make([]int, n)   // size[i] = items in slot i's cluster
	alive := make([]bool, n) // slot in use
	for i := 0; i < n; i++ {
		active[i], size[i], alive[i] = i, 1, true
	}

	dd := &Dendrogram{N: n}
	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if dist[i][j] < best {
					best, bi, bj = dist[i][j], i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		dd.Merges = append(dd.Merges, Merge{A: active[bi], B: active[bj], Distance: best})
		// Fold slot bj into slot bi with the linkage update.
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			switch linkage {
			case Single:
				dist[bi][k] = math.Min(dist[bi][k], dist[bj][k])
			case Complete:
				dist[bi][k] = math.Max(dist[bi][k], dist[bj][k])
			case Average:
				wi, wj := float64(size[bi]), float64(size[bj])
				dist[bi][k] = (wi*dist[bi][k] + wj*dist[bj][k]) / (wi + wj)
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
			}
			dist[k][bi] = dist[bi][k]
		}
		size[bi] += size[bj]
		alive[bj] = false
		active[bi] = nextID
		nextID++
	}
	return dd, nil
}

// Cut returns a flat clustering with k clusters: labels[i] in 0..k-1 for
// each original item, numbered by first appearance.
func (dd *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > dd.N {
		return nil, fmt.Errorf("cluster: cut k=%d out of range [1, %d]", k, dd.N)
	}
	// Apply the first n-k merges with union-find.
	parent := make([]int, dd.N+len(dd.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	steps := dd.N - k
	if steps > len(dd.Merges) {
		steps = len(dd.Merges)
	}
	for s := 0; s < steps; s++ {
		m := dd.Merges[s]
		newID := dd.N + s
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, dd.N)
	ids := map[int]int{}
	for i := 0; i < dd.N; i++ {
		r := find(i)
		if _, ok := ids[r]; !ok {
			ids[r] = len(ids)
		}
		labels[i] = ids[r]
	}
	return labels, nil
}

// CutByDistance returns the flat clustering obtained by stopping merges at
// linkage distance > maxDist.
func (dd *Dendrogram) CutByDistance(maxDist float64) []int {
	k := dd.N
	for _, m := range dd.Merges {
		if m.Distance <= maxDist {
			k--
		}
	}
	if k < 1 {
		k = 1
	}
	labels, _ := dd.Cut(k)
	return labels
}

// Silhouette computes the mean silhouette coefficient of a flat clustering
// over d — a [-1, 1] quality score (higher = tighter, better-separated
// clusters). Items in singleton clusters contribute 0.
func Silhouette(d Distances, labels []int) float64 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	groups := map[int][]int{}
	for i, l := range labels {
		groups[l] = append(groups[l], i)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		own := groups[labels[i]]
		if len(own) <= 1 {
			continue
		}
		a := 0.0
		for _, j := range own {
			if j != i {
				a += float64(d.At(i, j))
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for l, members := range groups {
			if l == labels[i] {
				continue
			}
			s := 0.0
			for _, j := range members {
				s += float64(d.At(i, j))
			}
			s /= float64(len(members))
			if s < b {
				b = s
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

// SortMergesByDistance returns the merges ordered by ascending distance
// (they already are for single linkage; other linkages can invert).
func (dd *Dendrogram) SortMergesByDistance() []Merge {
	out := make([]Merge, len(dd.Merges))
	copy(out, dd.Merges)
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}
