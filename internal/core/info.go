package core

import (
	"fmt"
	"math"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/tree"
)

// This file implements the information-content generalized RF — the style
// of "generalized Robinson-Foulds" the paper's future work targets (§IX,
// citing Wilkinson's information content [17] and Smith's information
// theoretic generalizations [19]).
//
// The phylogenetic information content of a split dividing n taxa into
// sides of a and n−a is h = −log₂ P(split), where P(split) is the fraction
// of unrooted binary n-trees containing it:
//
//	P = (2a−3)!! · (2(n−a)−3)!! / (2n−5)!!
//
// Rare (balanced) splits carry more information than shallow ones. The
// information-weighted distance replaces the unit count of each unshared
// bipartition with its information content:
//
//	icRF(T,T') = Σ_{b ∈ B(T) Δ B(T')} h(b)
//
// which decomposes over the frequency hash exactly like the weighted
// variant: left term from the total information mass of the hash, right
// term per query split.

// splitInfoTable holds lg₂(2k−3)!! for k = 0..n, so h(a) is three lookups.
type splitInfoTable []float64

func newSplitInfoTable(n int) splitInfoTable {
	t := make(splitInfoTable, n+1)
	// lg (2k−3)!! = Σ_{j=2..k} lg(2j−3); (2·0−3)!! and (2·1−3)!! are 1.
	acc := 0.0
	for k := 2; k <= n; k++ {
		acc += math.Log2(float64(2*k - 3))
		t[k] = acc
	}
	return t
}

// info returns h for a split with one side of size a out of n taxa.
// The total number of unrooted binary n-trees is (2n−5)!! = table[n−1].
func (t splitInfoTable) info(n, a int) float64 {
	if a < 2 || n-a < 2 {
		return 0 // trivial splits carry no information
	}
	return t[n-1] - t[a] - t[n-a]
}

// infoState lazily caches the per-hash information table and total mass.
func (h *FreqHash) infoState() (splitInfoTable, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.icTable == nil {
		h.icTable = newSplitInfoTable(h.taxa.Len())
		n := h.taxa.Len()
		sum := 0.0
		if h.oa != nil {
			h.oa.Range(func(_ []uint64, e entry) bool {
				sum += float64(e.Freq) * h.icTable.info(n, int(e.Size))
				return true
			})
		} else {
			for _, e := range h.m {
				sum += float64(e.Freq) * h.icTable.info(n, int(e.Size))
			}
		}
		h.icSum = sum
	}
	return h.icTable, h.icSum
}

// AverageInfoRF computes the average information-weighted RF of each query
// tree against the reference collection (tree-vs-hash, like AverageRF).
func (h *FreqHash) AverageInfoRF(q collection.Source, opts QueryOptions) ([]Result, error) {
	if err := q.Reset(); err != nil {
		return nil, err
	}
	var out []Result
	idx := 0
	for {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				return out, ErrCanceled
			default:
			}
		}
		t, err := q.Next()
		if err != nil {
			break
		}
		if opts.Skip != nil && opts.Skip(idx) {
			idx++
			continue
		}
		v, err := h.InfoRFOne(t, opts)
		if err != nil {
			return nil, fmt.Errorf("core: query tree %d: %w", idx, err)
		}
		r := Result{Index: idx, AvgRF: v}
		if opts.OnResult != nil {
			opts.OnResult(r)
		}
		out = append(out, r)
		idx++
	}
	return out, nil
}

// InfoRFOne is the single-tree information-weighted comparison.
func (h *FreqHash) InfoRFOne(t *tree.Tree, opts QueryOptions) (float64, error) {
	ex := &bipart.Extractor{
		Taxa:            h.taxa,
		RequireComplete: opts.RequireComplete,
		Filter:          opts.Filter,
	}
	bs, err := ex.Extract(t)
	if err != nil {
		return 0, err
	}
	table, icSum := h.infoState()
	n := h.taxa.Len()
	r := float64(h.numTrees)
	p := h.NewProber()
	left := icSum
	right := 0.0
	for _, b := range bs {
		hb := table.info(n, b.Size())
		e := p.entryOf(b)
		left -= float64(e.Freq) * hb
		right += hb * (r - float64(e.Freq))
	}
	v := (left + right) / r
	if v < 0 {
		// Guard the floating-point dust that subtraction of equal masses
		// can leave behind; true distances are never negative.
		v = 0
	}
	return v, nil
}

// SplitInformation returns the information content in bits of a split with
// one side of size a over n taxa. Exposed for tests and analyses.
func SplitInformation(n, a int) float64 {
	return newSplitInfoTable(n).info(n, a)
}
