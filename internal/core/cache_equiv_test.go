package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// The equivalence wall: every path a query can take — scalar or batched
// probes, map or open-addressing backend, cache attached or not — must
// produce the same float64 bit pattern for the same query. "Close enough"
// is not enough: the cache stores the uncached fold's exact bits, the
// batched path folds in the scalar path's exact order, and the distributed
// coordinator deduplicates by fingerprint, so a single ULP of divergence
// anywhere would surface as run-to-run nondeterminism downstream.

// equivQueries builds a query mix that stresses the cache's identity
// notion: exact repeats (must hit), NNI perturbations (must not alias),
// and label-permuted isomorphic twins (same shape, different bipartition
// sets — the classic aliasing trap).
func equivQueries(trees []*tree.Tree, ts *taxa.Set, rng *rand.Rand) []*tree.Tree {
	var qs []*tree.Tree
	for i := 0; i < 8; i++ {
		base := trees[i%len(trees)]
		qs = append(qs, base)                            // exact repeat of a reference
		qs = append(qs, simphy.PerturbNNI(base, 2, rng)) // near miss
		qs = append(qs, permuteLabels(base, ts, i+1))    // isomorphic twin
	}
	// Repeat the whole mix so every fingerprint recurs.
	return append(qs, qs...)
}

// permuteLabels clones a tree and rotates its leaf labels by k positions
// in the catalogue, producing an isomorphic tree over the same taxa with
// (generically) different bipartitions.
func permuteLabels(t *tree.Tree, ts *taxa.Set, k int) *tree.Tree {
	c := t.Clone()
	n := ts.Len()
	c.Postorder(func(nd *tree.Node) {
		if len(nd.Children) == 0 {
			id, ok := ts.Index(nd.Name)
			if !ok {
				panic("equiv test: leaf not in catalogue")
			}
			nd.Name = ts.Name((id + k) % n)
		}
	})
	return c
}

// equivConfig is one cell of the wall.
type equivConfig struct {
	name    string
	backend Backend
	probe   ProbeMode
	cached  bool
}

func equivConfigs() []equivConfig {
	var cs []equivConfig
	for _, b := range []struct {
		name string
		b    Backend
	}{{"oa", BackendOpenAddressing}, {"map", BackendMap}, {"succ", BackendSuccinct}, {"auto", BackendAuto}} {
		for _, p := range []struct {
			name string
			p    ProbeMode
		}{{"auto", ProbeAuto}, {"scalar", ProbeScalar}, {"batched", ProbeBatched}} {
			for _, cached := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/cached=%v", b.name, p.name, cached)
				cs = append(cs, equivConfig{name: name, backend: b.b, probe: p.p, cached: cached})
			}
		}
	}
	return cs
}

// TestCacheEquivalenceWall runs the full query mix through every
// backend × probe-mode × cache cell and every variant. Within a backend,
// every probe mode and cache setting must match the scalar uncached
// answers bit for bit — that is the probe paths' contract. Across
// backends, Plain and Normalized must also agree bit for bit (they fold
// integers; the float arithmetic is a final division of identical
// operands). Weighted is only compared approximately across backends:
// each backend accumulates per-entry LengthSum in its own insertion
// order at build time, so the stored sums themselves differ by ULPs
// before any probe runs.
func TestCacheEquivalenceWall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{12, 48, 100, 130} { // spans 1- and 3-word masks
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			trees, ts := randomCollection(int64(n)*3+1, n, 40)
			// Randomize branch lengths so Weighted is a real float fold,
			// not a sum of equal terms that can't expose reorderings.
			for _, tr := range trees {
				tr.Postorder(func(nd *tree.Node) {
					if nd.Parent != nil {
						nd.Length = rng.Float64()*2 + 0.01
						nd.HasLength = true
					}
				})
			}
			qs := equivQueries(trees, ts, rng)

			variants := []Variant{Plain, Normalized, Weighted}
			// crossBaseline: the map backend's scalar uncached answers, the
			// reference for cross-backend comparisons. backendBaseline is
			// re-derived per backend for the bit-identity checks.
			crossBaseline := make(map[Variant][]float64)
			hashes := map[Backend]*FreqHash{}
			for _, b := range []Backend{BackendMap, BackendOpenAddressing, BackendSuccinct, BackendAuto} {
				h, err := Build(collection.FromTrees(trees), ts, BuildOptions{
					RequireComplete: true, Backend: b,
				})
				if err != nil {
					t.Fatal(err)
				}
				hashes[b] = h
			}
			for _, v := range variants {
				crossBaseline[v] = equivAnswers(t, hashes[BackendMap], qs, QueryOptions{
					RequireComplete: true, Variant: v, Probe: ProbeScalar,
				})
			}

			backendBaseline := map[Backend]map[Variant][]float64{}
			for _, cfg := range equivConfigs() {
				h := hashes[cfg.backend]
				base, ok := backendBaseline[cfg.backend]
				if !ok {
					base = make(map[Variant][]float64)
					for _, v := range variants {
						base[v] = equivAnswers(t, h, qs, QueryOptions{
							RequireComplete: true, Variant: v, Probe: ProbeScalar,
						})
					}
					backendBaseline[cfg.backend] = base
				}
				for _, v := range variants {
					opts := QueryOptions{RequireComplete: true, Variant: v, Probe: cfg.probe}
					if cfg.cached {
						opts.Cache = NewQueryCache(0, 0)
					}
					got := equivAnswers(t, h, qs, opts)
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(base[v][i]) {
							t.Fatalf("%s/%v: query %d = %v (bits %x), backend scalar baseline %v (bits %x)",
								cfg.name, v, i, got[i], math.Float64bits(got[i]),
								base[v][i], math.Float64bits(base[v][i]))
						}
						if v == Weighted {
							if !approxEq(got[i], crossBaseline[v][i]) {
								t.Fatalf("%s/%v: query %d = %v, map baseline %v", cfg.name, v, i, got[i], crossBaseline[v][i])
							}
						} else if math.Float64bits(got[i]) != math.Float64bits(crossBaseline[v][i]) {
							t.Fatalf("%s/%v: query %d = %v (bits %x), map baseline %v (bits %x)",
								cfg.name, v, i, got[i], math.Float64bits(got[i]),
								crossBaseline[v][i], math.Float64bits(crossBaseline[v][i]))
						}
					}
					if cfg.cached && v != Weighted {
						if st := opts.Cache.Stats(); st.Hits == 0 {
							t.Errorf("%s/%v: repeat-laden mix produced no cache hits", cfg.name, v)
						}
					}
				}
			}
		})
	}
}

// equivAnswers runs the query mix through one prober configuration and
// returns the answers in query order.
func equivAnswers(t *testing.T, h *FreqHash, qs []*tree.Tree, opts QueryOptions) []float64 {
	t.Helper()
	ex := &bipart.Extractor{Taxa: h.taxa, RequireComplete: true}
	p := h.proberFor(opts)
	out := make([]float64, len(qs))
	for i, q := range qs {
		bs, err := ex.Extract(q)
		if err != nil {
			t.Fatal(err)
		}
		avg, err := p.AverageRFOfSplits(bs, opts.Variant)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = avg
	}
	return out
}

// TestCacheNoIsomorphicAliasing pins the aliasing trap directly: an
// isomorphic label-permuted twin must never be answered from the
// original's cache entry, even when queried back to back.
func TestCacheNoIsomorphicAliasing(t *testing.T) {
	trees, ts := randomCollection(23, 30, 25)
	h := buildHash(t, trees, ts)
	cache := NewQueryCache(0, 0)
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	for i, base := range trees[:10] {
		twin := permuteLabels(base, ts, i+1)
		bsBase, err := ex.Extract(base)
		if err != nil {
			t.Fatal(err)
		}
		bsTwin, err := ex.Extract(twin)
		if err != nil {
			t.Fatal(err)
		}
		if TopologyFingerprint(bsBase) == TopologyFingerprint(bsTwin) {
			// The rotation happened to be an automorphism; no aliasing risk.
			continue
		}
		p := h.NewProber()
		p.SetCache(cache)
		a1, err := p.AverageRFOfSplits(bsBase, Plain)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := p.AverageRFOfSplits(bsTwin, Plain)
		if err != nil {
			t.Fatal(err)
		}
		want, err := h.AverageRFOfSplits(bsTwin, Plain)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a2) != math.Float64bits(want) {
			t.Fatalf("tree %d: twin answered %v through cache, want %v (base %v)", i, a2, want, a1)
		}
	}
}
