package core

import (
	"fmt"

	"repro/internal/obs"
)

// Runtime metrics of the BFHRF core, published into the obs Default
// registry (served by cmd/bfhrfd's admin /metrics endpoint). The hot
// paths never touch these per bipartition: build workers and queryOne
// accumulate plain local integers and fold them in with one atomic add
// per tree, so the instrumentation stays invisible to the perf gate
// (rfbench -compare BENCH_*.json).
//
// Stage timings land in obs.StageMetric (bfhrf_stage_duration_seconds)
// via the spans opened in Build and AverageRF; the stage names there
// ("bfh.build", "bfh.query") match the workload names of the offline
// benchmark records — see EXPERIMENTS.md, "Runtime metric naming".
var (
	mRefTrees = obs.Counter("bfhrf_ref_trees_total",
		"Reference trees folded into the bipartition frequency hash.")
	mBipartitionsHashed = obs.Counter("bfhrf_bipartitions_hashed_total",
		"Bipartition instances extracted and folded in during BFH builds.")
	mUniqueBipartitions = obs.Gauge("bfhrf_unique_bipartitions",
		"Distinct bipartitions stored by the most recent BFH build.")
	mQueries = obs.Counter("bfhrf_queries_total",
		"Query trees answered by tree-vs-hash comparison.")
	mHashLookups = obs.Counter("bfhrf_hash_lookups_total",
		"Bipartition frequency lookups performed by queries.")
	mHashMisses = obs.Counter("bfhrf_hash_misses_total",
		"Query bipartition lookups that found no reference entry.")
	mHashProbeLength = obs.Histogram("bfhrf_hash_probe_length",
		"Probe-chain displacement of occupied open-addressing slots, observed once per slot after each BFH build (0 = direct hit).",
		[]float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
	mHashLoadFactor = obs.Gauge("bfhrf_hash_load_factor",
		"Occupied-slot fraction of the open-addressing BFH after the most recent build (0 when the map backend is active).")
	mCacheHits = obs.Counter("bfhrf_cache_hit_total",
		"Query trees answered from the topology-fingerprint result cache.")
	mCacheMisses = obs.Counter("bfhrf_cache_miss_total",
		"Query-cache lookups that fell through to a full probe pass.")
	mProbeBatchSize = obs.Histogram("bfhrf_probe_batch_size",
		"Query bipartitions probed per shard-ordered batch (batched lookup path only).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	mKeyBytesRaw = obs.Counter("bfhrf_key_bytes_total",
		"Arena bytes held by the succinct backend after the most recent build, by key encoding.",
		obs.L("encoding", "raw"))
	mKeyBytesSparse = obs.Counter("bfhrf_key_bytes_total",
		"Arena bytes held by the succinct backend after the most recent build, by key encoding.",
		obs.L("encoding", "sparse"))
	mKeyBytesCosparse = obs.Counter("bfhrf_key_bytes_total",
		"Arena bytes held by the succinct backend after the most recent build, by key encoding.",
		obs.L("encoding", "cosparse"))
	mKeyBytesDict = obs.Counter("bfhrf_key_bytes_total",
		"Arena bytes held by the succinct backend after the most recent build, by key encoding.",
		obs.L("encoding", "dict"))
	mSuccinctProbeLength = obs.Histogram("bfhrf_succinct_bucket_probe_length",
		"Probe-chain displacement of occupied succinct-backend slots, observed once per slot after each BFH build (0 = direct hit; misses along the chain are filtered by the packed (bucket, length) header).",
		[]float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
)

// SpanBuild and SpanQuery are the core's stage names in obs.StageMetric.
const (
	SpanBuild = "bfh.build"
	SpanQuery = "bfh.query"
)

// recordBuild publishes one completed build's tallies. The table health
// metrics (probe-length histograms, load factor, succinct key-byte
// composition) are sampled here, once per build over the finished table —
// the insert and lookup hot paths stay untouched.
func recordBuild(h *FreqHash, bipartitions int) {
	mRefTrees.Add(uint64(h.numTrees))
	mBipartitionsHashed.Add(uint64(bipartitions))
	mUniqueBipartitions.Set(float64(h.UniqueBipartitions()))
	switch {
	case h.oa != nil:
		mHashLoadFactor.Set(h.oa.LoadFactor())
		h.oa.ProbeLengths(func(d int) {
			mHashProbeLength.Observe(float64(d))
		})
	case h.st != nil:
		mHashLoadFactor.Set(h.st.LoadFactor())
		h.st.ProbeLengths(func(d int) {
			mSuccinctProbeLength.Observe(float64(d))
		})
		raw, sparse, cosparse, dict := h.st.KeyByteTotals()
		mKeyBytesRaw.Add(uint64(raw))
		mKeyBytesSparse.Add(uint64(sparse))
		mKeyBytesCosparse.Add(uint64(cosparse))
		mKeyBytesDict.Add(uint64(dict))
	default:
		mHashLoadFactor.Set(0)
	}
}

// annotateBuildSpan attaches the finished build's identity to its trace
// span: backend, size, and the reference-collection fingerprint that ties
// the trace to checkpoint and cache diagnostics.
func annotateBuildSpan(span *obs.Span, h *FreqHash) {
	if !span.Recorded() {
		return
	}
	span.SetAttr("backend", h.Backend().String())
	span.SetAttr("trees", h.NumTrees())
	span.SetAttr("unique", h.UniqueBipartitions())
	span.SetAttr("fingerprint", fmt.Sprintf("%016x", h.Fingerprint()))
}

// RecordQueries publishes query-side tallies: queries answered, frequency
// lookups performed, and lookups that missed. Exported so the distributed
// worker (internal/distrib), which answers queries against the same hash
// outside AverageRF, feeds the same counters.
func RecordQueries(queries, lookups, misses int) {
	if queries > 0 {
		mQueries.Add(uint64(queries))
	}
	if lookups > 0 {
		mHashLookups.Add(uint64(lookups))
	}
	if misses > 0 {
		mHashMisses.Add(uint64(misses))
	}
}
