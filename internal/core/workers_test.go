package core

import (
	"testing"

	"repro/internal/collection"
)

// TestEffectiveWorkersClamp pins the small-workload clamp that fixed the
// BENCH_0001 regression (DSMP8 slower than DS on a 289-tree slice): the
// effective worker count is min(requested, trees/64), at least 1, with
// unknown sizes passing the request through.
func TestEffectiveWorkersClamp(t *testing.T) {
	cases := []struct {
		requested, trees, want int
	}{
		{8, 289, 4},   // the BENCH_0001 avian slice at scale 0.02
		{8, 63, 1},    // below one floor: sequential
		{8, 64, 1},    // exactly one floor
		{8, 128, 2},   // two floors
		{8, 10000, 8}, // large workload: request honored
		{2, 10000, 2},
		{8, 0, 8},  // unknown size passes through
		{8, -1, 8}, // Counter convention: negative = unknown
		{0, 10, 1}, // degenerate request
	}
	for _, c := range cases {
		if got := EffectiveWorkers(c.requested, c.trees); got != c.want {
			t.Errorf("EffectiveWorkers(%d, %d) = %d, want %d",
				c.requested, c.trees, got, c.want)
		}
	}
}

func TestSourceLen(t *testing.T) {
	trees, _ := randomCollection(5, 8, 7)
	if n := sourceLen(collection.FromTrees(trees)); n != 7 {
		t.Fatalf("sourceLen(slice) = %d, want 7", n)
	}
	if n := sourceLen(nonCounting{collection.FromTrees(trees)}); n != -1 {
		t.Fatalf("sourceLen(non-counting) = %d, want -1", n)
	}
}

// nonCounting hides the Counter (and everything else) behind the bare
// Source interface.
type nonCounting struct{ collection.Source }
