package core

import (
	"fmt"

	"repro/internal/bfhtable"
	"repro/internal/bipart"
	"repro/internal/bitset"
	"repro/internal/taxa"
)

// Hash reassembly from serialized entries — the receiving half of the
// distributed snapshot protocol (internal/distrib). A snapshot walks
// RangeShardRaw; a Restorer folds those raw (words, entry) pairs back into
// a fresh hash on any backend, so shards can be checkpointed and migrated
// between workers regardless of the engine either side runs.

// RestoreSpec describes the hash being reassembled.
type RestoreSpec struct {
	// Taxa is the catalogue the mask words are encoded over (required).
	Taxa *taxa.Set
	// NumTrees is r for the restored shard.
	NumTrees int
	// Weighted records whether every entry carries meaningful length sums.
	Weighted bool
	// CompressKeys and Backend select the engine, with the same defaulting
	// rules as BuildOptions.
	CompressKeys bool
	Backend      Backend
	// HashShards overrides the open-addressing shard count (default 1 for
	// a restored table; restores are single-threaded folds).
	HashShards int
}

// Restorer accumulates snapshot entries into a hash. Not safe for
// concurrent use.
type Restorer struct {
	h  *FreqHash
	nw int
}

// NewRestorer returns a restorer for the spec.
func NewRestorer(spec RestoreSpec) (*Restorer, error) {
	if spec.Taxa == nil {
		return nil, fmt.Errorf("core: restore requires a taxon catalogue")
	}
	if (spec.Backend == BackendOpenAddressing || spec.Backend == BackendSuccinct) && spec.CompressKeys {
		return nil, fmt.Errorf("core: compressed keys require the map backend")
	}
	h := &FreqHash{
		taxa:       spec.Taxa,
		numTrees:   spec.NumTrees,
		weighted:   spec.Weighted,
		compressed: spec.CompressKeys,
	}
	opts := BuildOptions{CompressKeys: spec.CompressKeys, Backend: spec.Backend}
	shards := spec.HashShards
	if shards <= 0 {
		shards = 1
	}
	switch opts.resolveBackendFor(spec.Taxa.Len()) {
	case BackendOpenAddressing:
		h.oa = bfhtable.New(wordsPerKey(spec.Taxa), shards)
	case BackendSuccinct:
		h.st = bfhtable.NewSuccinct(spec.Taxa.Len(), shards)
	default:
		h.m = make(map[string]entry)
	}
	return &Restorer{h: h, nw: wordsPerKey(spec.Taxa)}, nil
}

// AddEntry folds one snapshot entry: a canonical mask as raw words plus
// its aggregated record. Frequencies accumulate, so entries for the same
// bipartition (e.g. from two merged shards) fold correctly.
func (r *Restorer) AddEntry(words []uint64, e bfhtable.Entry) error {
	if len(words) != r.nw {
		return fmt.Errorf("core: restore entry has %d words, want %d", len(words), r.nw)
	}
	h := r.h
	switch {
	case h.oa != nil:
		h.oa.AddEntry(words, e)
	case h.st != nil:
		h.st.AddEntry(words, e)
	default:
		mask, err := bitset.FromWords(words, h.taxa.Len())
		if err != nil {
			return fmt.Errorf("core: restore entry: %w", err)
		}
		k := h.keyOf(bipart.FromMask(mask, 0))
		me := h.m[k]
		me.Freq += e.Freq
		me.Size = e.Size
		me.LengthSum += e.LengthSum
		h.m[k] = me
	}
	h.sum += uint64(e.Freq)
	h.lenSum += e.LengthSum
	return nil
}

// Finish returns the reassembled hash. A restored succinct table is
// frozen here so its shared-prefix dictionary is rebuilt over the full
// reassembled population (worker snapshots arrive dictionary-free).
func (r *Restorer) Finish() (*FreqHash, error) {
	if r.h.numTrees <= 0 {
		return nil, fmt.Errorf("core: restored hash has no trees")
	}
	if r.h.st != nil {
		r.h.st.Freeze()
	}
	return r.h, nil
}
