package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/tree"
)

// writeCollection materializes trees to a Newick file and opens it.
func writeCollection(t *testing.T, trees []*tree.Tree) *collection.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trees.nwk")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		if err := newick.Write(f, tr, newick.DefaultWriteOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := collection.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

// TestRawPathMatchesParsedPath: building/querying from a file (raw
// parallel-parse path) must equal the in-memory (pre-parsed) path exactly.
func TestRawPathMatchesParsedPath(t *testing.T) {
	trees, ts := randomCollection(303, 15, 80)
	fileSrc := writeCollection(t, trees)
	memSrc := collection.FromTrees(trees)

	hFile, err := Build(fileSrc, ts, BuildOptions{RequireComplete: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	hMem, err := Build(memSrc, ts, BuildOptions{RequireComplete: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hFile.NumTrees() != hMem.NumTrees() {
		t.Fatalf("r: %d vs %d", hFile.NumTrees(), hMem.NumTrees())
	}
	if hFile.UniqueBipartitions() != hMem.UniqueBipartitions() {
		t.Fatalf("unique: %d vs %d", hFile.UniqueBipartitions(), hMem.UniqueBipartitions())
	}
	if hFile.TotalBipartitions() != hMem.TotalBipartitions() {
		t.Fatalf("sum: %d vs %d", hFile.TotalBipartitions(), hMem.TotalBipartitions())
	}

	resFile, err := hFile.AverageRF(fileSrc, QueryOptions{RequireComplete: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	resMem, err := hMem.AverageRF(memSrc, QueryOptions{RequireComplete: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resFile) != len(resMem) {
		t.Fatalf("results: %d vs %d", len(resFile), len(resMem))
	}
	for i := range resFile {
		if resFile[i].AvgRF != resMem[i].AvgRF {
			t.Errorf("query %d: raw %v vs parsed %v", i, resFile[i].AvgRF, resMem[i].AvgRF)
		}
	}
}

func TestRawPathErrorsPropagate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.nwk")
	if err := os.WriteFile(path, []byte("((A,B),(C,D));\n(A,;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := collection.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := BuildDefault(src, abcd); err == nil {
		t.Error("malformed tree in the raw path should fail the build")
	}
}

func TestRawPathQueryErrorsPropagate(t *testing.T) {
	trees, ts := randomCollection(5, 8, 6)
	h := buildHash(t, trees, ts)
	path := filepath.Join(t.TempDir(), "q.nwk")
	if err := os.WriteFile(path, []byte("((A,B),(C,D));\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := collection.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := h.AverageRF(src, QueryOptions{RequireComplete: true}); err == nil {
		t.Error("wrong-taxa query in the raw path should fail")
	}
}
