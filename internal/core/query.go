package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bfhtable"
	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/obs"
	"repro/internal/tree"
)

// Variant selects the RF flavour computed against the hash. Because the
// hash stores untransformed bipartitions with exact frequencies, each
// variant is a different fold over the same structure — the extensibility
// property the paper emphasizes (§VII.F).
type Variant int

const (
	// Plain is the traditional symmetric-difference count (paper Eq. 1).
	Plain Variant = iota
	// Normalized divides Plain by the maximum RF between two binary trees
	// on n taxa, 2(n−3), yielding values in [0, 1].
	Normalized
	// Weighted sums branch lengths of unshared bipartitions instead of
	// counting them (the hash-decomposable weighted-RF generalization):
	// wRF(T,T') = Σ_{b∈B(T)\B(T')} len_T(b) + Σ_{b∈B(T')\B(T)} len_T'(b).
	Weighted
)

// String names the variant for diagnostics and CLI flags.
func (v Variant) String() string {
	switch v {
	case Plain:
		return "plain"
	case Normalized:
		return "normalized"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ErrCanceled is returned (wrapped) by AverageRF when QueryOptions.Cancel
// fires; the results computed so far accompany it.
var ErrCanceled = errors.New("core: query canceled")

// ProbeMode selects how a prober walks the open-addressing table.
type ProbeMode int

const (
	// ProbeAuto (the default) probes scalar for small bipartition sets
	// or cache-resident tables, and switches to shard-ordered batches
	// from probeBatchMin splits once the table's footprint exceeds
	// probeBatchTableMin (locality only pays when probes miss cache).
	ProbeAuto ProbeMode = iota
	// ProbeScalar forces the per-bipartition probe loop.
	ProbeScalar
	// ProbeBatched forces shard-ordered batched probing whenever the
	// open-addressing backend is active (the map backend has no batch
	// path and always probes scalar).
	ProbeBatched
)

// String names the probe mode for diagnostics.
func (m ProbeMode) String() string {
	switch m {
	case ProbeAuto:
		return "auto"
	case ProbeScalar:
		return "scalar"
	case ProbeBatched:
		return "batched"
	default:
		return fmt.Sprintf("ProbeMode(%d)", int(m))
	}
}

// probeBatchMin is the bipartition count from which ProbeAuto batches:
// below it the counting sort's fixed cost beats the locality win.
const probeBatchMin = 16

// probeBatchTableMin is the open-addressing footprint from which
// ProbeAuto batches. Shard-ordered probing only pays when scattered
// probes miss the CPU caches; below this size the whole table is
// cache-resident, every probe is cheap regardless of order, and the
// batch's scratch fill plus counting sort is pure overhead (measured
// ~2× slower on the bench-scale avian table).
const probeBatchTableMin = 4 << 20

// batchAuto reports whether ProbeAuto should take the batched path,
// deciding once per prober from the active table's footprint. Probers
// are created per query pass, so a table growing across passes (AddTree)
// re-evaluates naturally.
func (p *Prober) batchAuto() bool {
	if p.autoBatch == 0 {
		if p.h.FootprintBytes() >= probeBatchTableMin {
			p.autoBatch = 1
		} else {
			p.autoBatch = -1
		}
	}
	return p.autoBatch == 1
}

// QueryOptions configure the query phase (the second loop of Algorithm 2).
type QueryOptions struct {
	// Workers is the number of goroutines comparing trees against the
	// hash. 0 selects GOMAXPROCS.
	Workers int
	// Filter optionally drops query bipartitions before comparison. For
	// meaningful distances use the same filter as at build time.
	Filter bipart.Filter
	// Variant selects the RF flavour (Plain by default).
	Variant Variant
	// RequireComplete rejects query trees not covering the catalogue.
	RequireComplete bool
	// Skip, when set, elides queries whose index it reports true for: the
	// tree is still consumed from the source (streams have no seek) but
	// never compared, and no Result is produced for it. Checkpoint resume
	// uses this to avoid recomputing finished trees. With Skip set, the
	// returned slice is compacted — ascending in Index, gaps where skipped.
	Skip func(idx int) bool
	// OnResult, when set, observes each result as soon as a worker
	// produces it (out of order). It may be called from multiple
	// goroutines concurrently; checkpoint writers serialize internally.
	OnResult func(Result)
	// Cancel, when closed, stops feeding new queries. AverageRF drains
	// in-flight work and returns the results completed so far alongside
	// an error wrapping ErrCanceled — so a signal handler can flush a
	// valid checkpoint before exit.
	Cancel <-chan struct{}
	// Cache, when set, answers exact topological repeats from the shared
	// query-result cache instead of re-probing the hash. Only the Plain
	// and Normalized variants consult it (Weighted results depend on
	// branch lengths, which the topology fingerprint ignores). Cached
	// answers are bit-identical to recomputation.
	Cache *QueryCache
	// Probe selects the probe path (ProbeAuto by default).
	Probe ProbeMode
}

func (o QueryOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// proberFor returns a prober carrying the options' cache and probe mode.
// The cache may be shared across probers (it locks internally); the
// prober itself remains single-goroutine state.
func (h *FreqHash) proberFor(opts QueryOptions) *Prober {
	p := h.NewProber()
	p.cache = opts.Cache
	p.probe = opts.Probe
	return p
}

// SetCache attaches (or, with nil, detaches) a shared query-result cache.
func (p *Prober) SetCache(c *QueryCache) { p.cache = c }

// SetProbeMode selects the probe path for subsequent queries.
func (p *Prober) SetProbeMode(m ProbeMode) { p.probe = m }

// Result is the average distance of one query tree to the reference
// collection.
type Result struct {
	// Index is the query tree's position in Q.
	Index int
	// AvgRF is (RFleft + RFright) / r in the selected variant's units.
	AvgRF float64
}

// AverageRF streams the query collection and computes each tree's average
// RF distance to the reference collection via tree-vs-hash comparison.
// Results are in query order.
func (h *FreqHash) AverageRF(q collection.Source, opts QueryOptions) ([]Result, error) {
	if opts.Variant == Weighted && !h.weighted {
		return nil, fmt.Errorf("core: weighted variant requires branch lengths on every reference bipartition")
	}
	_, span := obs.StartSpan(nil, SpanQuery)
	defer span.End()
	if span.Recorded() {
		span.SetAttr("variant", opts.Variant)
		span.SetAttr("probe", opts.Probe)
		span.SetAttr("fingerprint", fmt.Sprintf("%016x", h.Fingerprint()))
		span.SetAttr("cache", opts.Cache != nil)
		if opts.Cache != nil {
			// Process-global counters; the deltas are exact when one query
			// pass runs at a time, an upper bound under concurrency.
			hits0, misses0 := mCacheHits.Value(), mCacheMisses.Value()
			defer func() {
				span.SetAttr("cache_hits", mCacheHits.Value()-hits0)
				span.SetAttr("cache_misses", mCacheMisses.Value()-misses0)
			}()
		}
	}
	// Parallel-parse fast path (see rawbuild.go).
	if rs, ok := rawCapable(q); ok {
		return h.averageRFRaw(rs, opts)
	}
	if err := q.Reset(); err != nil {
		return nil, err
	}
	workers := EffectiveWorkers(opts.workers(), sourceLen(q))

	type job struct {
		idx int
		t   *tree.Tree
	}
	jobs := make(chan job, workers*2)
	outs := make([][]Result, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := &bipart.Extractor{
				Taxa:            h.taxa,
				RequireComplete: opts.RequireComplete,
				Filter:          opts.Filter,
				ReuseMasks:      true,
			}
			p := h.proberFor(opts)
			for j := range jobs {
				avg, err := h.queryOne(j.t, ex, p, opts.Variant)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("core: query tree %d: %w", j.idx, err)
					}
					continue
				}
				r := Result{Index: j.idx, AvgRF: avg}
				if opts.OnResult != nil {
					opts.OnResult(r)
				}
				outs[w] = append(outs[w], r)
			}
		}(w)
	}

	var dispatched []bool
	canceled := false
	var feedErr error
	for !canceled {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				canceled = true
				continue
			default:
			}
		}
		t, err := q.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		idx := len(dispatched)
		if opts.Skip != nil && opts.Skip(idx) {
			dispatched = append(dispatched, false)
			continue
		}
		dispatched = append(dispatched, true)
		jobs <- job{idx: idx, t: t}
	}
	close(jobs)
	wg.Wait()

	if feedErr != nil {
		return nil, fmt.Errorf("core: reading query collection: %w", feedErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return collectResults(outs, dispatched, canceled)
}

// collectResults merges per-worker partial results into one slice sorted
// by query index. dispatched[i] records whether query i was handed to a
// worker; unless the run was canceled, every dispatched query must have
// produced a result (the PR-4 no-silent-loss invariant). On cancellation
// the completed subset is returned alongside ErrCanceled.
func collectResults(outs [][]Result, dispatched []bool, canceled bool) ([]Result, error) {
	n := 0
	for _, part := range outs {
		n += len(part)
	}
	results := make([]Result, 0, n)
	for _, part := range outs {
		results = append(results, part...)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	if canceled {
		return results, ErrCanceled
	}
	got := make([]bool, len(dispatched))
	for _, r := range results {
		if r.Index < len(got) {
			got[r.Index] = true
		}
	}
	for i, want := range dispatched {
		if want && !got[i] {
			return nil, fmt.Errorf("core: query tree %d produced no result", i)
		}
	}
	return results, nil
}

// AverageRFOne computes the average distance of a single tree against the
// hash — one tree-vs-hash comparison.
func (h *FreqHash) AverageRFOne(t *tree.Tree, opts QueryOptions) (float64, error) {
	if opts.Variant == Weighted && !h.weighted {
		return 0, fmt.Errorf("core: weighted variant requires branch lengths on every reference bipartition")
	}
	ex := &bipart.Extractor{
		Taxa:            h.taxa,
		RequireComplete: opts.RequireComplete,
		Filter:          opts.Filter,
	}
	return h.queryOne(t, ex, h.proberFor(opts), opts.Variant)
}

// queryOne is Algorithm 2's inner body: one tree versus the hash.
func (h *FreqHash) queryOne(t *tree.Tree, ex *bipart.Extractor, p *Prober, v Variant) (float64, error) {
	bs, err := ex.Extract(t)
	if err != nil {
		return 0, err
	}
	return p.AverageRFOfSplits(bs, v)
}

// AverageRFOfSplits computes the average RF of a query tree given its
// already-extracted bipartition set — the pure probe phase of Algorithm 2.
// Exposed (here and on Prober for allocation-free repetition) so backend
// ablations can measure lookup cost in isolation from parsing and
// extraction.
func (h *FreqHash) AverageRFOfSplits(bs []bipart.Bipartition, v Variant) (float64, error) {
	return h.NewProber().AverageRFOfSplits(bs, v)
}

// AverageRFOfSplits is Algorithm 2's probe loop over a pre-extracted
// bipartition set, through the prober's allocation-free lookup path.
// With a cache attached (SetCache / QueryOptions.Cache), Plain and
// Normalized queries are first looked up by topology fingerprint, so an
// exact topological repeat skips the probe pass entirely; its cached
// answer is the identical bit pattern the probe pass produced.
func (p *Prober) AverageRFOfSplits(bs []bipart.Bipartition, v Variant) (float64, error) {
	if c := p.cache; c != nil && (v == Plain || v == Normalized) {
		k := p.fp.key(bs)
		if avg, ok := c.Get(k, v); ok {
			RecordQueries(1, 0, 0)
			return avg, nil
		}
		avg, err := p.averageRFUncached(bs, v)
		if err != nil {
			return 0, err
		}
		c.Put(k, v, avg)
		return avg, nil
	}
	return p.averageRFUncached(bs, v)
}

// averageRFUncached is the probe pass proper: shard-ordered batches when
// a table backend is active and the mode allows, the scalar loop
// otherwise. Both paths fold in the bipartition slice's order, so they
// are bit-identical in every variant.
func (p *Prober) averageRFUncached(bs []bipart.Bipartition, v Variant) (float64, error) {
	h := p.h
	if (h.oa != nil || h.st != nil) &&
		(p.probe == ProbeBatched ||
			(p.probe == ProbeAuto && len(bs) >= probeBatchMin && p.batchAuto())) {
		return p.averageRFBatched(bs, v)
	}
	r := float64(h.numTrees)
	misses := 0
	switch v {
	case Plain, Normalized:
		// RFleft starts at sumBFHR; each query bipartition subtracts its
		// frequency. RFright accumulates r − freq per query bipartition.
		// The backend dispatch is hoisted out of the fold: entryOf does
		// not inline, and on the open-addressing path the extra call
		// layer plus per-probe branch cost as much as the probe itself.
		rfLeft := int64(h.sum)
		rfRight := int64(0)
		rInt := int64(h.numTrees)
		if oa := h.oa; oa != nil {
			if oa.WordsPerKey() == 1 {
				for _, b := range bs {
					e, _ := oa.Lookup1Hashed(b.Hash(), b.Words()[0])
					f := int64(e.Freq)
					if f == 0 {
						misses++
					}
					rfLeft -= f
					rfRight += rInt - f
				}
			} else {
				for _, b := range bs {
					e, _ := oa.LookupHashed(b.Hash(), b.Words())
					f := int64(e.Freq)
					if f == 0 {
						misses++
					}
					rfLeft -= f
					rfRight += rInt - f
				}
			}
		} else if st := h.st; st != nil {
			// Succinct path: encode each query mask into the prober's
			// scratch (no allocation once warm) and probe the compressed
			// arena; the (bucket, length) header resolves most misses
			// before any key bytes are read.
			var meta uint32
			for _, b := range bs {
				p.buf, meta = st.AppendEncoded(p.buf[:0], b.Words())
				e, _ := st.LookupEncoded(b.Hash(), p.buf, meta)
				f := int64(e.Freq)
				if f == 0 {
					misses++
				}
				rfLeft -= f
				rfRight += rInt - f
			}
		} else {
			for _, b := range bs {
				f := int64(p.entryOf(b).Freq)
				if f == 0 {
					misses++
				}
				rfLeft -= f
				rfRight += rInt - f
			}
		}
		RecordQueries(1, len(bs), misses)
		avg := float64(rfLeft+rfRight) / r
		if v == Normalized {
			n := h.taxa.Len()
			maxRF := 2 * (n - 3)
			if maxRF <= 0 {
				return 0, nil
			}
			avg /= float64(maxRF)
		}
		return avg, nil
	case Weighted:
		// Left term: total reference length mass minus the mass of
		// bipartitions matched by the query. Right term: each query
		// bipartition's own length once per reference tree lacking it.
		left := h.lenSum
		right := 0.0
		for _, b := range bs {
			if !b.HasLength {
				return 0, fmt.Errorf("query bipartition without branch length in weighted variant")
			}
			e := p.entryOf(b)
			if e.Freq == 0 {
				misses++
			}
			left -= e.LengthSum
			right += b.Length * (r - float64(e.Freq))
		}
		RecordQueries(1, len(bs), misses)
		return (left + right) / r, nil
	default:
		return 0, fmt.Errorf("unknown variant %v", v)
	}
}

// averageRFBatched is the probe pass over a table backend via its
// LookupBatch: keys are loaded into the prober's batch scratch (raw words
// for open addressing, compressed encodings for succinct), probed in
// shard-then-slot order for locality, and the entries come back in the
// original index order — so the fold below runs in exactly the same order
// as the scalar loop, keeping even the Weighted variant's float summation
// bit-identical.
func (p *Prober) averageRFBatched(bs []bipart.Bipartition, v Variant) (float64, error) {
	h := p.h
	var entries []bfhtable.Entry
	if st := h.st; st != nil {
		pb := &p.sbatch
		pb.Reset()
		for _, b := range bs {
			st.BatchAppend(pb, b.Hash(), b.Words())
		}
		entries = st.LookupBatch(pb)
	} else {
		oa := h.oa
		nw := oa.WordsPerKey()
		keys, hashes := p.batch.Reset(len(bs), nw)
		if nw == 1 {
			for i, b := range bs {
				keys[i] = b.Words()[0]
				hashes[i] = b.Hash()
			}
		} else {
			for i, b := range bs {
				copy(keys[i*nw:(i+1)*nw], b.Words())
				hashes[i] = b.Hash()
			}
		}
		entries = oa.LookupBatch(&p.batch, len(bs))
	}
	mProbeBatchSize.Observe(float64(len(bs)))
	r := float64(h.numTrees)
	misses := 0
	switch v {
	case Plain, Normalized:
		rfLeft := int64(h.sum)
		rfRight := int64(0)
		rInt := int64(h.numTrees)
		for i := range entries {
			f := int64(entries[i].Freq)
			if f == 0 {
				misses++
			}
			rfLeft -= f
			rfRight += rInt - f
		}
		RecordQueries(1, len(bs), misses)
		avg := float64(rfLeft+rfRight) / r
		if v == Normalized {
			n := h.taxa.Len()
			maxRF := 2 * (n - 3)
			if maxRF <= 0 {
				return 0, nil
			}
			avg /= float64(maxRF)
		}
		return avg, nil
	case Weighted:
		left := h.lenSum
		right := 0.0
		for i, b := range bs {
			if !b.HasLength {
				return 0, fmt.Errorf("query bipartition without branch length in weighted variant")
			}
			e := entries[i]
			if e.Freq == 0 {
				misses++
			}
			left -= e.LengthSum
			right += b.Length * (r - float64(e.Freq))
		}
		RecordQueries(1, len(bs), misses)
		return (left + right) / r, nil
	default:
		return 0, fmt.Errorf("unknown variant %v", v)
	}
}

// Best returns the result with the lowest average RF — the
// most-parsimonious candidate under the RF optimality criterion, the
// selection problem that motivates the paper's introduction.
func Best(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("core: no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.AvgRF < best.AvgRF {
			best = r
		}
	}
	return best, nil
}
