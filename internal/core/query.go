package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/obs"
	"repro/internal/tree"
)

// Variant selects the RF flavour computed against the hash. Because the
// hash stores untransformed bipartitions with exact frequencies, each
// variant is a different fold over the same structure — the extensibility
// property the paper emphasizes (§VII.F).
type Variant int

const (
	// Plain is the traditional symmetric-difference count (paper Eq. 1).
	Plain Variant = iota
	// Normalized divides Plain by the maximum RF between two binary trees
	// on n taxa, 2(n−3), yielding values in [0, 1].
	Normalized
	// Weighted sums branch lengths of unshared bipartitions instead of
	// counting them (the hash-decomposable weighted-RF generalization):
	// wRF(T,T') = Σ_{b∈B(T)\B(T')} len_T(b) + Σ_{b∈B(T')\B(T)} len_T'(b).
	Weighted
)

// String names the variant for diagnostics and CLI flags.
func (v Variant) String() string {
	switch v {
	case Plain:
		return "plain"
	case Normalized:
		return "normalized"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ErrCanceled is returned (wrapped) by AverageRF when QueryOptions.Cancel
// fires; the results computed so far accompany it.
var ErrCanceled = errors.New("core: query canceled")

// QueryOptions configure the query phase (the second loop of Algorithm 2).
type QueryOptions struct {
	// Workers is the number of goroutines comparing trees against the
	// hash. 0 selects GOMAXPROCS.
	Workers int
	// Filter optionally drops query bipartitions before comparison. For
	// meaningful distances use the same filter as at build time.
	Filter bipart.Filter
	// Variant selects the RF flavour (Plain by default).
	Variant Variant
	// RequireComplete rejects query trees not covering the catalogue.
	RequireComplete bool
	// Skip, when set, elides queries whose index it reports true for: the
	// tree is still consumed from the source (streams have no seek) but
	// never compared, and no Result is produced for it. Checkpoint resume
	// uses this to avoid recomputing finished trees. With Skip set, the
	// returned slice is compacted — ascending in Index, gaps where skipped.
	Skip func(idx int) bool
	// OnResult, when set, observes each result as soon as a worker
	// produces it (out of order). It may be called from multiple
	// goroutines concurrently; checkpoint writers serialize internally.
	OnResult func(Result)
	// Cancel, when closed, stops feeding new queries. AverageRF drains
	// in-flight work and returns the results completed so far alongside
	// an error wrapping ErrCanceled — so a signal handler can flush a
	// valid checkpoint before exit.
	Cancel <-chan struct{}
}

func (o QueryOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Result is the average distance of one query tree to the reference
// collection.
type Result struct {
	// Index is the query tree's position in Q.
	Index int
	// AvgRF is (RFleft + RFright) / r in the selected variant's units.
	AvgRF float64
}

// AverageRF streams the query collection and computes each tree's average
// RF distance to the reference collection via tree-vs-hash comparison.
// Results are in query order.
func (h *FreqHash) AverageRF(q collection.Source, opts QueryOptions) ([]Result, error) {
	if opts.Variant == Weighted && !h.weighted {
		return nil, fmt.Errorf("core: weighted variant requires branch lengths on every reference bipartition")
	}
	_, span := obs.StartSpan(nil, SpanQuery)
	defer span.End()
	// Parallel-parse fast path (see rawbuild.go).
	if rs, ok := rawCapable(q); ok {
		return h.averageRFRaw(rs, opts)
	}
	if err := q.Reset(); err != nil {
		return nil, err
	}
	workers := EffectiveWorkers(opts.workers(), sourceLen(q))

	type job struct {
		idx int
		t   *tree.Tree
	}
	jobs := make(chan job, workers*2)
	outs := make([][]Result, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := &bipart.Extractor{
				Taxa:            h.taxa,
				RequireComplete: opts.RequireComplete,
				Filter:          opts.Filter,
				ReuseMasks:      true,
			}
			p := h.NewProber()
			for j := range jobs {
				avg, err := h.queryOne(j.t, ex, p, opts.Variant)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("core: query tree %d: %w", j.idx, err)
					}
					continue
				}
				r := Result{Index: j.idx, AvgRF: avg}
				if opts.OnResult != nil {
					opts.OnResult(r)
				}
				outs[w] = append(outs[w], r)
			}
		}(w)
	}

	var dispatched []bool
	canceled := false
	var feedErr error
	for !canceled {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				canceled = true
				continue
			default:
			}
		}
		t, err := q.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		idx := len(dispatched)
		if opts.Skip != nil && opts.Skip(idx) {
			dispatched = append(dispatched, false)
			continue
		}
		dispatched = append(dispatched, true)
		jobs <- job{idx: idx, t: t}
	}
	close(jobs)
	wg.Wait()

	if feedErr != nil {
		return nil, fmt.Errorf("core: reading query collection: %w", feedErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return collectResults(outs, dispatched, canceled)
}

// collectResults merges per-worker partial results into one slice sorted
// by query index. dispatched[i] records whether query i was handed to a
// worker; unless the run was canceled, every dispatched query must have
// produced a result (the PR-4 no-silent-loss invariant). On cancellation
// the completed subset is returned alongside ErrCanceled.
func collectResults(outs [][]Result, dispatched []bool, canceled bool) ([]Result, error) {
	n := 0
	for _, part := range outs {
		n += len(part)
	}
	results := make([]Result, 0, n)
	for _, part := range outs {
		results = append(results, part...)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	if canceled {
		return results, ErrCanceled
	}
	got := make([]bool, len(dispatched))
	for _, r := range results {
		if r.Index < len(got) {
			got[r.Index] = true
		}
	}
	for i, want := range dispatched {
		if want && !got[i] {
			return nil, fmt.Errorf("core: query tree %d produced no result", i)
		}
	}
	return results, nil
}

// AverageRFOne computes the average distance of a single tree against the
// hash — one tree-vs-hash comparison.
func (h *FreqHash) AverageRFOne(t *tree.Tree, opts QueryOptions) (float64, error) {
	if opts.Variant == Weighted && !h.weighted {
		return 0, fmt.Errorf("core: weighted variant requires branch lengths on every reference bipartition")
	}
	ex := &bipart.Extractor{
		Taxa:            h.taxa,
		RequireComplete: opts.RequireComplete,
		Filter:          opts.Filter,
	}
	return h.queryOne(t, ex, h.NewProber(), opts.Variant)
}

// queryOne is Algorithm 2's inner body: one tree versus the hash.
func (h *FreqHash) queryOne(t *tree.Tree, ex *bipart.Extractor, p *Prober, v Variant) (float64, error) {
	bs, err := ex.Extract(t)
	if err != nil {
		return 0, err
	}
	return p.AverageRFOfSplits(bs, v)
}

// AverageRFOfSplits computes the average RF of a query tree given its
// already-extracted bipartition set — the pure probe phase of Algorithm 2.
// Exposed (here and on Prober for allocation-free repetition) so backend
// ablations can measure lookup cost in isolation from parsing and
// extraction.
func (h *FreqHash) AverageRFOfSplits(bs []bipart.Bipartition, v Variant) (float64, error) {
	return h.NewProber().AverageRFOfSplits(bs, v)
}

// AverageRFOfSplits is Algorithm 2's probe loop over a pre-extracted
// bipartition set, through the prober's allocation-free lookup path.
func (p *Prober) AverageRFOfSplits(bs []bipart.Bipartition, v Variant) (float64, error) {
	h := p.h
	r := float64(h.numTrees)
	misses := 0
	switch v {
	case Plain, Normalized:
		// RFleft starts at sumBFHR; each query bipartition subtracts its
		// frequency. RFright accumulates r − freq per query bipartition.
		// The backend dispatch is hoisted out of the fold: entryOf does
		// not inline, and on the open-addressing path the extra call
		// layer plus per-probe branch cost as much as the probe itself.
		rfLeft := int64(h.sum)
		rfRight := int64(0)
		rInt := int64(h.numTrees)
		if oa := h.oa; oa != nil {
			if oa.WordsPerKey() == 1 {
				for _, b := range bs {
					e, _ := oa.Lookup1(b.Words()[0])
					f := int64(e.Freq)
					if f == 0 {
						misses++
					}
					rfLeft -= f
					rfRight += rInt - f
				}
			} else {
				for _, b := range bs {
					e, _ := oa.Lookup(b.Words())
					f := int64(e.Freq)
					if f == 0 {
						misses++
					}
					rfLeft -= f
					rfRight += rInt - f
				}
			}
		} else {
			for _, b := range bs {
				f := int64(p.entryOf(b).Freq)
				if f == 0 {
					misses++
				}
				rfLeft -= f
				rfRight += rInt - f
			}
		}
		RecordQueries(1, len(bs), misses)
		avg := float64(rfLeft+rfRight) / r
		if v == Normalized {
			n := h.taxa.Len()
			maxRF := 2 * (n - 3)
			if maxRF <= 0 {
				return 0, nil
			}
			avg /= float64(maxRF)
		}
		return avg, nil
	case Weighted:
		// Left term: total reference length mass minus the mass of
		// bipartitions matched by the query. Right term: each query
		// bipartition's own length once per reference tree lacking it.
		left := h.lenSum
		right := 0.0
		for _, b := range bs {
			if !b.HasLength {
				return 0, fmt.Errorf("query bipartition without branch length in weighted variant")
			}
			e := p.entryOf(b)
			if e.Freq == 0 {
				misses++
			}
			left -= e.LengthSum
			right += b.Length * (r - float64(e.Freq))
		}
		RecordQueries(1, len(bs), misses)
		return (left + right) / r, nil
	default:
		return 0, fmt.Errorf("unknown variant %v", v)
	}
}

// Best returns the result with the lowest average RF — the
// most-parsimonious candidate under the RF optimality criterion, the
// selection problem that motivates the paper's introduction.
func Best(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("core: no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.AvgRF < best.AvgRF {
			best = r
		}
	}
	return best, nil
}
