package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// cacheTestKey returns a TopoKey pinned to a chosen shard: shardOf selects
// by Hi's low bits, so Hi ≡ shard (mod #shards) and Lo carries the id.
func cacheTestKey(shard, id uint64, shards uint64) TopoKey {
	return TopoKey{Hi: shard + id*shards, Lo: id ^ 0xabcdef}
}

func TestQueryCacheCapBounds(t *testing.T) {
	cases := []struct {
		entries  int
		bytes    int64
		wantCap  int
		wantDesc string
	}{
		{0, 0, defaultCacheEntries, "defaults"},
		{100, 0, 100, "entry bound"},
		{0, cacheEntryBytes * 4, 4, "byte bound"},
		{100, cacheEntryBytes * 8, 8, "stricter byte bound wins"},
		{8, cacheEntryBytes * 100, 8, "stricter entry bound wins"},
		{1, 1, 1, "never below one entry"},
	}
	for _, c := range cases {
		got := NewQueryCache(c.entries, c.bytes).Cap()
		if got != c.wantCap {
			t.Errorf("NewQueryCache(%d, %d).Cap() = %d, want %d (%s)",
				c.entries, c.bytes, got, c.wantCap, c.wantDesc)
		}
	}
}

// TestQueryCacheLRU drives one shard through insert, promote, update, and
// evict, checking the least-recently-used entry is always the casualty.
func TestQueryCacheLRU(t *testing.T) {
	c := NewQueryCache(2, 0) // 2 entries → 2 shards of capacity 1
	if len(c.shards) != 2 || c.Cap() != 2 {
		t.Fatalf("shards=%d cap=%d, want 2/2", len(c.shards), c.Cap())
	}
	// Work entirely in shard 0 so one entry of capacity is in play.
	k1 := cacheTestKey(0, 1, 2)
	k2 := cacheTestKey(0, 2, 2)
	c.Put(k1, Plain, 1.0)
	if v, ok := c.Get(k1, Plain); !ok || v != 1.0 {
		t.Fatalf("Get(k1) = %v,%v after Put", v, ok)
	}
	// Same fingerprint, different variant: a distinct entry, and the
	// shard's capacity-one LRU evicts the Plain result.
	c.Put(k1, Normalized, 0.25)
	if _, ok := c.Get(k1, Plain); ok {
		t.Fatal("Plain entry survived eviction by Normalized entry")
	}
	if v, ok := c.Get(k1, Normalized); !ok || v != 0.25 {
		t.Fatalf("Get(k1, Normalized) = %v,%v", v, ok)
	}
	// Update-in-place must not evict, and must return the new value.
	c.Put(k1, Normalized, 0.5)
	if v, ok := c.Get(k1, Normalized); !ok || v != 0.5 {
		t.Fatalf("after update: %v,%v, want 0.5,true", v, ok)
	}
	// A new key in the full shard evicts the old one.
	c.Put(k2, Plain, 2.0)
	if _, ok := c.Get(k1, Normalized); ok {
		t.Fatal("LRU entry survived insert at capacity")
	}
	if v, ok := c.Get(k2, Plain); !ok || v != 2.0 {
		t.Fatalf("Get(k2) = %v,%v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 1 || c.Len() != 1 {
		t.Errorf("entries = %d/%d, want 1", st.Entries, c.Len())
	}
}

// TestQueryCacheLRUOrder fills a capacity-3 shard, touches the oldest
// entry, and checks the untouched middle entry is evicted instead.
func TestQueryCacheLRUOrder(t *testing.T) {
	c := NewQueryCache(3, 0) // 3 entries → 2 shards (16 halves to ≤3)
	shards := uint64(len(c.shards))
	// Shard 0 has cap 2 (3/2 rounded up for shard 0).
	if c.shards[0].cap != 2 {
		t.Fatalf("shard 0 cap = %d, want 2", c.shards[0].cap)
	}
	k := func(id uint64) TopoKey { return cacheTestKey(0, id, shards) }
	c.Put(k(1), Plain, 1)
	c.Put(k(2), Plain, 2)
	c.Get(k(1), Plain)    // promote k1: k2 is now LRU
	c.Put(k(3), Plain, 3) // evicts k2
	if _, ok := c.Get(k(2), Plain); ok {
		t.Fatal("promoted entry's junior survived; LRU order broken")
	}
	for _, id := range []uint64{1, 3} {
		if v, ok := c.Get(k(id), Plain); !ok || v != float64(id) {
			t.Fatalf("Get(k%d) = %v,%v", id, v, ok)
		}
	}
}

// TestQueryCacheHammer is the race/eviction hammer: goroutines slam a
// capacity-2 cache with a keyspace far larger than capacity, so every
// operation contends and eviction churns constantly. Each key has one
// well-known value; any hit returning anything else means a torn or
// misfiled entry. Run under -race in CI.
func TestQueryCacheHammer(t *testing.T) {
	c := NewQueryCache(2, 0)
	shards := uint64(len(c.shards))
	const (
		workers = 8
		keys    = 64
		rounds  = 2000
	)
	valueOf := func(id uint64) float64 { return float64(id)*1.5 + 0.25 }
	var wg sync.WaitGroup
	gets := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := uint64((i*7 + w*13) % keys)
				k := cacheTestKey(id%shards, id, shards)
				if v, ok := c.Get(k, Plain); ok {
					if v != valueOf(id) {
						t.Errorf("hit for key %d returned %v, want %v", id, v, valueOf(id))
					}
				} else {
					c.Put(k, Plain, valueOf(id))
				}
				gets[w]++
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, g := range gets {
		total += g
	}
	st := c.Stats()
	if st.Hits+st.Misses != total {
		t.Errorf("hits %d + misses %d != gets %d", st.Hits, st.Misses, total)
	}
	if st.Evictions == 0 {
		t.Error("no evictions on a capacity-2 cache under 64-key churn")
	}
	if st.Entries > c.Cap() {
		t.Errorf("entries %d exceed capacity %d", st.Entries, c.Cap())
	}
}

// TestQueryCacheChaosPutDelay arms a delay on every cache insert,
// stretching the compute-to-publish window while readers race the
// writers: a half-written entry would surface as a wrong hit value.
func TestQueryCacheChaosPutDelay(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointCachePut,
		Kind:  faultinject.KindDelay,
		Times: -1,
		Delay: 100 * time.Microsecond,
	})
	c := NewQueryCache(4, 0)
	shards := uint64(len(c.shards))
	valueOf := func(id uint64) float64 { return math.Sqrt(float64(id + 2)) }
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				id := uint64((i + w*5) % 16)
				k := cacheTestKey(id%shards, id, shards)
				if v, ok := c.Get(k, Plain); ok {
					if v != valueOf(id) {
						t.Errorf("chaos hit for key %d returned %v, want %v", id, v, valueOf(id))
					}
				} else {
					c.Put(k, Plain, valueOf(id))
				}
			}
		}(w)
	}
	wg.Wait()
	if hits := faultinject.HitCount(faultinject.PointCachePut); hits == 0 {
		t.Fatal("delay plan never fired — injection point unplumbed")
	}
}

// TestQueryCacheChaosPutError: an armed error plan drops every insert, so
// the cache stays empty — and the prober wrapped around it must still
// answer every query correctly, just without ever hitting.
func TestQueryCacheChaosPutError(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts := randomCollection(3, 40, 30)
	h := buildHash(t, trees, ts)
	want, err := h.AverageRFOne(trees[0], QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointCachePut,
		Kind:  faultinject.KindError,
		Times: -1,
	})
	cache := NewQueryCache(0, 0)
	for i := 0; i < 3; i++ {
		got, err := h.AverageRFOne(trees[0], QueryOptions{RequireComplete: true, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pass %d: cached-path answer %v != uncached %v", i, got, want)
		}
	}
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries though every insert was dropped", cache.Len())
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 0/3", st.Hits, st.Misses)
	}
}
