package core

import (
	"fmt"
	"strconv"

	"repro/internal/bipart"
	"repro/internal/bitset"
	"repro/internal/tree"
)

// AnnotateSupport labels every internal node of t (in place) with the
// support of its induced bipartition over the reference collection — the
// standard way posterior/bootstrap proportions are put on a summary tree,
// computed here with frequency lookups against the BFH instead of a sweep
// over the collection.
//
// Labels are percentages formatted per format ("%.0f" style precision is
// chosen by digits; 0 → integer percent). Pendant edges and the root keep
// their names. The tree must cover the hash's full catalogue.
func (h *FreqHash) AnnotateSupport(t *tree.Tree, digits int) error {
	n := h.taxa.Len()
	if digits < 0 {
		digits = 0
	}
	// Postorder mask accumulation, mirroring the extractor but keeping the
	// node handle so the label can be written back.
	masks := make(map[*tree.Node]*bitset.Bits)
	var fail error
	anchor := -1
	t.Postorder(func(nd *tree.Node) {
		if fail != nil || !nd.IsLeaf() {
			return
		}
		idx, ok := h.taxa.Index(nd.Name)
		if !ok {
			fail = fmt.Errorf("core: leaf %q not in the hash's catalogue", nd.Name)
			return
		}
		if anchor == -1 || idx < anchor {
			anchor = idx
		}
	})
	if fail != nil {
		return fail
	}
	skip := map[*tree.Node]bool{}
	if t.Root != nil && len(t.Root.Children) == 2 {
		// Degree-2 root: both child edges are the same unrooted edge; label
		// only the first (the second would duplicate it).
		skip[t.Root.Children[1]] = true
	}
	t.Postorder(func(nd *tree.Node) {
		if fail != nil {
			return
		}
		m := bitset.New(n)
		if nd.IsLeaf() {
			idx, _ := h.taxa.Index(nd.Name)
			m.Set(idx)
		} else {
			for _, c := range nd.Children {
				m.Or(masks[c])
				delete(masks, c)
			}
		}
		masks[nd] = m
		if nd.IsLeaf() || nd.Parent == nil || skip[nd] {
			return
		}
		b := bipart.FromMask(m.Clone(), anchor)
		if b.IsTrivial(n) {
			return
		}
		support := h.SupportOf(b) * 100
		nd.Name = strconv.FormatFloat(support, 'f', digits, 64)
	})
	return fail
}
