package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// QueryCache is the bounded, sharded LRU result cache of the query side:
// it maps (topology fingerprint, variant) to an already-computed average
// RF, so exact topological repeats — bootstrap replicates, MCMC posterior
// samples — are answered without touching the frequency hash at all. A
// cached value is the bit pattern the uncached fold produced, so cache
// hits are bit-identical to recomputation (the equivalence wall in
// cache_equiv_test.go enforces this).
//
// Only the Plain and Normalized variants are cached: their results depend
// on topology alone. Weighted results also depend on the query tree's
// branch lengths, which the topology fingerprint deliberately ignores, so
// weighted probes always take the uncached path.
//
// The cache is safe for concurrent use: each shard holds its own mutex,
// entry map, and intrusive LRU list, and every entry is written in full
// under the shard lock — a reader can observe a missing entry, never a
// partially-written one (the race/eviction hammer churns this under
// -race). Capacity is enforced per shard, in entries and — via the fixed
// per-entry footprint — in bytes.
type QueryCache struct {
	shards []cacheShard
	mask   uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheEntryBytes is the accounted footprint of one cache entry: the node
// (key, value, two list links), its map slot, and amortized map overhead.
// Entries are fixed-size, so the byte cap reduces to an entry cap.
const cacheEntryBytes = 96

// Default capacity bounds when NewQueryCache is given zeros.
const (
	defaultCacheEntries = 1 << 16
	defaultCacheBytes   = 8 << 20
)

// cacheKey identifies one cached result.
type cacheKey struct {
	k TopoKey
	v Variant
}

// cacheNode is one LRU list element; prev/next index the shard's nodes
// slice (-1 terminates the list).
type cacheNode struct {
	key        cacheKey
	val        float64
	prev, next int
}

// cacheShard is one lock domain: a map from key to node index plus an
// intrusive doubly-linked LRU list over a preallocated node arena.
type cacheShard struct {
	mu         sync.Mutex
	idx        map[cacheKey]int
	nodes      []cacheNode
	head, tail int // most / least recently used; -1 when empty
	cap        int
}

// NewQueryCache returns a cache bounded by maxEntries entries and
// (approximately) maxBytes bytes of accounted footprint; zero or negative
// values select the defaults (65536 entries, 8 MiB). The effective
// capacity is the stricter of the two bounds, never below one entry.
func NewQueryCache(maxEntries int, maxBytes int64) *QueryCache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries
	}
	if maxBytes <= 0 {
		maxBytes = defaultCacheBytes
	}
	if byBytes := int(maxBytes / cacheEntryBytes); byBytes < maxEntries {
		maxEntries = byBytes
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	// Shard for lock spreading, but never so finely that a shard's slice
	// of the capacity rounds to zero entries.
	ns := 16
	for ns > 1 && ns > maxEntries {
		ns /= 2
	}
	c := &QueryCache{shards: make([]cacheShard, ns), mask: uint64(ns - 1)}
	for i := range c.shards {
		per := maxEntries / ns
		if i < maxEntries%ns {
			per++
		}
		c.shards[i] = cacheShard{head: -1, tail: -1, cap: per}
	}
	return c
}

// shardOf selects the shard by the fingerprint's high half — foldTopoKey
// avalanches it, so any bit slice spreads evenly.
func (c *QueryCache) shardOf(k TopoKey) *cacheShard {
	return &c.shards[k.Hi&c.mask]
}

// Get returns the cached average for (k, v) and whether it was present,
// promoting a hit to most-recently-used.
func (c *QueryCache) Get(k TopoKey, v Variant) (float64, bool) {
	s := c.shardOf(k)
	key := cacheKey{k: k, v: v}
	s.mu.Lock()
	i, ok := s.idx[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		mCacheMisses.Inc()
		return 0, false
	}
	s.unlink(i)
	s.pushFront(i)
	val := s.nodes[i].val
	s.mu.Unlock()
	c.hits.Add(1)
	mCacheHits.Inc()
	return val, true
}

// Put inserts (k, v) → avg, evicting the shard's least-recently-used
// entry when the shard is at capacity. Concurrent Puts of the same key
// are benign: both goroutines computed the value from the same immutable
// hash, so the bit patterns are identical whichever lands last.
func (c *QueryCache) Put(k TopoKey, v Variant, avg float64) {
	// The injection point sits before the lock: an armed delay stretches
	// the compute-to-publish window without serializing the shard, an
	// error plan drops the insert (the computed result is still returned
	// to the caller — a lost insert costs a future miss, never a wrong
	// answer), and a crash models dying with a result computed but not
	// yet cached.
	if faultinject.Hit(faultinject.PointCachePut) != nil {
		return
	}
	s := c.shardOf(k)
	key := cacheKey{k: k, v: v}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.idx[key]; ok {
		s.nodes[i].val = avg
		s.unlink(i)
		s.pushFront(i)
		return
	}
	if s.idx == nil {
		s.idx = make(map[cacheKey]int, s.cap)
	}
	var i int
	if len(s.nodes) < s.cap {
		i = len(s.nodes)
		s.nodes = append(s.nodes, cacheNode{})
	} else {
		// Recycle the least-recently-used node.
		i = s.tail
		s.unlink(i)
		delete(s.idx, s.nodes[i].key)
		c.evictions.Add(1)
	}
	s.nodes[i] = cacheNode{key: key, val: avg, prev: -1, next: -1}
	s.idx[key] = i
	s.pushFront(i)
}

// unlink removes node i from the shard's LRU list.
func (s *cacheShard) unlink(i int) {
	n := &s.nodes[i]
	if n.prev >= 0 {
		s.nodes[n.prev].next = n.next
	} else if s.head == i {
		s.head = n.next
	}
	if n.next >= 0 {
		s.nodes[n.next].prev = n.prev
	} else if s.tail == i {
		s.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

// pushFront makes node i the most recently used.
func (s *cacheShard) pushFront(i int) {
	n := &s.nodes[i]
	n.prev, n.next = -1, s.head
	if s.head >= 0 {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

// Len returns the number of cached results.
func (c *QueryCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.idx)
		s.mu.Unlock()
	}
	return n
}

// Cap returns the total entry capacity across shards.
func (c *QueryCache) Cap() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// CacheStats is a point-in-time tally of cache traffic.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Stats snapshots the cache's counters. Hits+Misses equals the number of
// Get calls — the accounting invariant the eviction hammer asserts.
func (c *QueryCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
