package core_test

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/tree"
)

func mustParse(newicks []string) []*tree.Tree {
	trees := make([]*tree.Tree, len(newicks))
	for i, s := range newicks {
		t, err := newick.Parse(s)
		if err != nil {
			log.Fatal(err)
		}
		trees[i] = t
	}
	return trees
}

// Example builds the bipartition frequency hash over a reference
// collection once and answers each query with a single tree-vs-hash
// comparison — the paper's core loop.
func Example() {
	refs := mustParse([]string{
		"((A,B),(C,D),E);",
		"((A,B),(C,E),D);",
		"((A,C),(B,D),E);",
	})
	queries := mustParse([]string{
		"((A,B),(C,D),E);", // identical to the first reference
		"((A,E),(B,C),D);", // shares no non-trivial split
	})

	src := collection.FromTrees(refs)
	ts, err := collection.ScanTaxa(src)
	if err != nil {
		log.Fatal(err)
	}
	h, err := core.Build(src, ts, core.BuildOptions{RequireComplete: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("references=%d unique splits=%d\n", h.NumTrees(), h.UniqueBipartitions())

	results, err := h.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("query %d: avgRF %.4f\n", r.Index, r.AvgRF)
	}
	// Output:
	// references=3 unique splits=5
	// query 0: avgRF 2.0000
	// query 1: avgRF 4.0000
}
