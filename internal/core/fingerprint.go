package core

import (
	"math/bits"
	"slices"

	"repro/internal/bipart"
	"repro/internal/bitset"
)

// Topology fingerprints: a 128-bit identity of a query tree's canonical
// bipartition set, the key of the query-side result cache. Two query
// trees get the same fingerprint exactly when they induce the same set of
// canonical bipartitions — i.e. when they are the same unrooted topology
// over the catalogue, regardless of serialization order, rooting, or the
// order taxa appear in the Newick text. (Relabeling taxa changes the
// bipartition set and therefore the fingerprint, as it must: a relabeled
// tree has different RF distances.)
//
// Construction: each bipartition carries its canonical mask words' hash
// under the open-addressing table's hashing rule (bitset.HashWord /
// bitset.HashWords by key width — see bipart.Bipartition.Hash), computed
// once at extraction; the per-bipartition hashes are sorted (this is what
// makes the digest order-invariant), and the sorted sequence is folded
// into two independently seeded MixHash chains. The hash pass therefore
// reads only the contiguous bipartition slice, never the
// pointer-scattered mask words. Collisions between differing bipartition
// sets require either a 64-bit word-hash collision between two distinct
// bipartitions or a simultaneous collision of both 64-bit fold chains;
// FuzzFingerprint hunts for both on hostile inputs.

// TopoKey is the 128-bit topology fingerprint of a bipartition set.
type TopoKey struct {
	Hi, Lo uint64
}

// topoSeedLo/Hi seed the two fold chains. The low chain reuses the
// HashWords seed; the high chain uses a distinct odd constant and sees
// each element rotated, so the chains never agree by construction.
const (
	topoSeedLo = 0x9e3779b97f4a7c15
	topoSeedHi = 0xc2b2ae3d27d4eb4f
)

// fingerprinter computes TopoKeys with reusable scratch; like Prober it
// is single-goroutine state.
type fingerprinter struct {
	hs     []uint64
	sorted []uint64
	bucket [257]int32
}

// key fingerprints one extracted bipartition set. It equals
// TopologyFingerprint(bs) exactly; the only difference is the sort: a
// counting-sort scatter on the top hash byte plus insertion sort within
// each bucket run — the idiom of bfhtable.LookupBatch — because pdqsort's
// partition branches mispredict heavily on fresh random hashes, tripling
// the per-query cost of the cache-hit path.
func (f *fingerprinter) key(bs []bipart.Bipartition) TopoKey {
	hs := f.hs[:0]
	for _, b := range bs {
		hs = append(hs, b.Hash())
	}
	f.hs = hs
	return foldSortedTopoKey(f.sortHashes())
}

// fpRadixMax bounds the counting-sort path: beyond it the 256 buckets run
// deep enough that the comparison sort wins back.
const fpRadixMax = 2048

// sortHashes sorts f.hs into f.sorted (f.hs is left untouched) and
// returns the sorted slice.
func (f *fingerprinter) sortHashes() []uint64 {
	hs := f.hs
	n := len(hs)
	if cap(f.sorted) < n {
		f.sorted = make([]uint64, n)
	}
	s := f.sorted[:n]
	if n > fpRadixMax {
		copy(s, hs)
		slices.Sort(s)
		return s
	}
	// Bucket count tracks n so the fixed costs (counter clear, prefix
	// sum, run walk) stay proportional to the work: 64 buckets suffice
	// below 128 elements (≈1.5 per run), 256 above.
	nb, shift := 64, 58
	if n > 128 {
		nb, shift = 256, 56
	}
	bucket := f.bucket[:nb+1]
	for i := range bucket {
		bucket[i] = 0
	}
	for _, h := range hs {
		bucket[h>>shift]++
	}
	sum := int32(0)
	for i := 0; i <= nb; i++ {
		c := bucket[i]
		bucket[i] = sum
		sum += c
	}
	for _, h := range hs {
		b := h >> shift
		s[bucket[b]] = h
		bucket[b]++
	}
	// bucket[b] now holds the end of bucket b's run; insertion-sort each.
	start := int32(0)
	for b := 0; b < nb; b++ {
		end := bucket[b]
		run := s[start:end]
		for i := 1; i < len(run); i++ {
			h := run[i]
			j := i - 1
			for j >= 0 && run[j] > h {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = h
		}
		start = end
	}
	return s
}

// TopologyFingerprint returns the topology fingerprint of an extracted
// bipartition set. The allocation-free path for repeated queries is a
// Prober with a cache attached; this entry point serves one-shot callers
// (the distributed coordinator fingerprints each query tree once).
func TopologyFingerprint(bs []bipart.Bipartition) TopoKey {
	var f fingerprinter
	return f.key(bs)
}

// foldTopoKey sorts the per-bipartition hashes in place and folds them
// into the two chains. Sorting makes the digest independent of the order
// bipartitions were extracted in — two serializations of one topology
// emit the same set in different orders.
func foldTopoKey(hs []uint64) TopoKey {
	slices.Sort(hs)
	return foldSortedTopoKey(hs)
}

// foldSortedTopoKey folds an already-sorted hash sequence into the two
// chains.
func foldSortedTopoKey(hs []uint64) TopoKey {
	lo := uint64(topoSeedLo) ^ uint64(len(hs))
	hi := uint64(topoSeedHi) ^ (uint64(len(hs)) * topoSeedLo)
	for _, h := range hs {
		lo = bitset.MixHash(lo, h)
		hi = bitset.MixHash(hi, bits.RotateLeft64(h, 32))
	}
	return TopoKey{Hi: bitset.FinishHash(hi), Lo: bitset.FinishHash(lo)}
}
