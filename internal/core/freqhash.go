package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bipart"
	"repro/internal/bitset"
	"repro/internal/taxa"
)

// entry is the per-bipartition record of the BFH. Freq is the number of
// reference trees containing the bipartition; LengthSum accumulates the
// inducing edges' branch lengths for the weighted-RF variant; Size is the
// popcount of the canonical mask, kept so size-dependent variants
// (information content) never need to decode keys.
type entry struct {
	Freq      uint32
	Size      uint32
	LengthSum float64
}

// FreqHash is the bipartition frequency hash BFH_R: a collision-free map
// from canonical bipartition encodings to their frequency across the
// reference collection. It is immutable after Build and safe for
// concurrent readers.
type FreqHash struct {
	taxa *taxa.Set
	m    map[string]entry
	// sum is Σ_b freq[b] — the paper's sumBFHR.
	sum uint64
	// lenSum is Σ_b lengthSum[b], for the weighted variant's left term.
	lenSum float64
	// numTrees is r, the number of reference trees folded in.
	numTrees int
	// weighted records whether every indexed bipartition carried a length.
	weighted bool
	// compressed selects CompactKey (the §IX lossless key compression)
	// instead of the raw bitmask bytes as the map key.
	compressed bool

	// mu guards the lazily built information-content state below and the
	// incremental-update path; the read-only query hot paths never take it.
	mu      sync.Mutex
	icTable splitInfoTable
	icSum   float64
}

// Compressed reports whether the hash stores compressed keys.
func (h *FreqHash) Compressed() bool { return h.compressed }

// keyOf returns b's map key under the hash's key scheme. Both schemes are
// collision-free; the compressed one trades CPU for memory.
func (h *FreqHash) keyOf(b bipart.Bipartition) string {
	if h.compressed {
		return b.CompactKey()
	}
	return b.Key()
}

// maskFromKey inverts keyOf for Entries.
func (h *FreqHash) maskFromKey(k string) (*bitset.Bits, error) {
	if h.compressed {
		return bitset.FromCompactKey(k, h.taxa.Len())
	}
	return bitset.FromKey(k, h.taxa.Len())
}

// Taxa returns the catalogue the hash is encoded over.
func (h *FreqHash) Taxa() *taxa.Set { return h.taxa }

// NumTrees returns r, the number of reference trees.
func (h *FreqHash) NumTrees() int { return h.numTrees }

// UniqueBipartitions returns the number of distinct bipartitions stored —
// the quantity that actually bounds BFHRF's memory (paper §VII.C).
func (h *FreqHash) UniqueBipartitions() int { return len(h.m) }

// TotalBipartitions returns sumBFHR, the total bipartition instances.
func (h *FreqHash) TotalBipartitions() uint64 { return h.sum }

// Weighted reports whether every reference bipartition carried a branch
// length (required by the weighted-RF variant).
func (h *FreqHash) Weighted() bool { return h.weighted }

// Frequency returns the frequency of b over the reference collection
// (0 if absent, per the paper's convention BFH_R[b] = 0).
func (h *FreqHash) Frequency(b bipart.Bipartition) int {
	return int(h.m[h.keyOf(b)].Freq)
}

// FrequencyByKey is Frequency for a precomputed canonical key.
func (h *FreqHash) FrequencyByKey(key string) int { return int(h.m[key].Freq) }

// SupportOf returns freq/r, the fraction of reference trees containing b.
func (h *FreqHash) SupportOf(b bipart.Bipartition) float64 {
	if h.numTrees == 0 {
		return 0
	}
	return float64(h.Frequency(b)) / float64(h.numTrees)
}

// Entry describes one stored bipartition for inspection and consensus.
type Entry struct {
	Bipartition bipart.Bipartition
	Frequency   int
	// Support is Frequency / r.
	Support float64
	// MeanLength is LengthSum / Frequency when lengths were tracked.
	MeanLength float64
}

// Entries returns every stored bipartition with frequency at least
// minFreq, sorted by descending frequency (ties broken by key for
// determinism). minFreq <= 1 returns everything.
func (h *FreqHash) Entries(minFreq int) ([]Entry, error) {
	if minFreq < 1 {
		minFreq = 1
	}
	out := make([]Entry, 0, len(h.m))
	for k, e := range h.m {
		if int(e.Freq) < minFreq {
			continue
		}
		mask, err := h.maskFromKey(k)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt hash key: %w", err)
		}
		ent := Entry{
			Bipartition: bipart.FromMask(mask, 0),
			Frequency:   int(e.Freq),
			Support:     float64(e.Freq) / float64(h.numTrees),
		}
		if e.Freq > 0 {
			ent.MeanLength = e.LengthSum / float64(e.Freq)
		}
		out = append(out, ent)
	}
	// Tie-break on the canonical (uncompressed) encoding so the order — and
	// anything derived from it, like the greedy consensus — is identical
	// whether or not the hash stores compressed keys.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Bipartition.Key() < out[j].Bipartition.Key()
	})
	return out, nil
}

// KeySizes returns the byte length of every stored key, for memory
// accounting (the §IX compression ablation).
func (h *FreqHash) KeySizes() []int {
	out := make([]int, 0, len(h.m))
	for k := range h.m {
		out = append(out, len(k))
	}
	return out
}

// merge folds a worker-local frequency map into the hash (build phase only).
func (h *FreqHash) merge(local map[string]entry) {
	for k, le := range local {
		e := h.m[k]
		e.Freq += le.Freq
		e.Size = le.Size
		e.LengthSum += le.LengthSum
		h.m[k] = e
		h.sum += uint64(le.Freq)
		h.lenSum += le.LengthSum
	}
}

// invalidateDerived drops lazily computed state after a mutation.
func (h *FreqHash) invalidateDerived() {
	h.mu.Lock()
	h.icTable = nil
	h.icSum = 0
	h.mu.Unlock()
}
