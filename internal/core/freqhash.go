package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bfhtable"
	"repro/internal/bipart"
	"repro/internal/bitset"
	"repro/internal/taxa"
)

// entry is the per-bipartition record of the BFH. Freq is the number of
// reference trees containing the bipartition; LengthSum accumulates the
// inducing edges' branch lengths for the weighted-RF variant; Size is the
// popcount of the canonical mask, kept so size-dependent variants
// (information content) never need to decode keys. It is the open-addressing
// table's record type so entries move between backends without conversion.
type entry = bfhtable.Entry

// Backend selects the storage engine behind the frequency hash.
type Backend int

const (
	// BackendAuto picks the open-addressing table unless compressed keys
	// are requested (which only the map backend supports).
	BackendAuto Backend = iota
	// BackendOpenAddressing is the zero-allocation word-keyed table
	// (internal/bfhtable): bipartitions are hashed and stored as their raw
	// mask words, no key string ever materializes, and build workers merge
	// shard-parallel. The default.
	BackendOpenAddressing
	// BackendMap is the legacy map[string]entry engine. It remains the
	// only backend supporting the §IX compressed-key scheme, and serves as
	// the A/B baseline for the backend ablation.
	BackendMap
	// BackendSuccinct is the compressed-key open-addressing table
	// (bfhtable.SuccinctTable): keys live in a variable-length arena under
	// the raw/sparse/cosparse/dictionary encoding, probes filter on a
	// packed (popcount bucket, length) header, and the arena shrinks from
	// n/8 bytes per key to the encoded size — the huge-n engine. Auto-
	// selected when the estimated raw key width reaches
	// autoSuccinctKeyBytes.
	BackendSuccinct
)

// String names the backend for diagnostics and CLI flags.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendOpenAddressing:
		return "openaddr"
	case BackendMap:
		return "map"
	case BackendSuccinct:
		return "succinct"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend inverts Backend.String (empty selects auto).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "openaddr", "oa":
		return BackendOpenAddressing, nil
	case "map":
		return BackendMap, nil
	case "succinct", "succ":
		return BackendSuccinct, nil
	}
	return 0, fmt.Errorf("core: unknown hash backend %q (want auto, openaddr, map or succinct)", s)
}

// FreqHash is the bipartition frequency hash BFH_R: a collision-free map
// from canonical bipartition encodings to their frequency across the
// reference collection. It is immutable after Build and safe for
// concurrent readers.
//
// Exactly one of the three storage engines is active: oa (the default
// open-addressing word-keyed table), st (the succinct compressed-key
// table for huge catalogues), or m (the legacy string-keyed map, required
// for compressed map keys).
type FreqHash struct {
	taxa *taxa.Set
	m    map[string]entry
	oa   *bfhtable.Table
	st   *bfhtable.SuccinctTable
	// sum is Σ_b freq[b] — the paper's sumBFHR.
	sum uint64
	// lenSum is Σ_b lengthSum[b], for the weighted variant's left term.
	lenSum float64
	// numTrees is r, the number of reference trees folded in.
	numTrees int
	// weighted records whether every indexed bipartition carried a length.
	weighted bool
	// compressed selects CompactKey (the §IX lossless key compression)
	// instead of the raw bitmask bytes as the map key. Map backend only.
	compressed bool

	// mu guards the lazily built information-content state below and the
	// incremental-update path; the read-only query hot paths never take it.
	mu      sync.Mutex
	icTable splitInfoTable
	icSum   float64
}

// Backend reports which storage engine the hash uses.
func (h *FreqHash) Backend() Backend {
	if h.oa != nil {
		return BackendOpenAddressing
	}
	if h.st != nil {
		return BackendSuccinct
	}
	return BackendMap
}

// Compressed reports whether the hash stores compressed keys.
func (h *FreqHash) Compressed() bool { return h.compressed }

// keyOf returns b's map key under the hash's key scheme (map backend only).
// Both schemes are collision-free; the compressed one trades CPU for memory.
func (h *FreqHash) keyOf(b bipart.Bipartition) string {
	if h.compressed {
		return b.CompactKey()
	}
	return b.Key()
}

// maskFromKey inverts keyOf for Entries.
func (h *FreqHash) maskFromKey(k string) (*bitset.Bits, error) {
	if h.compressed {
		return bitset.FromCompactKey(k, h.taxa.Len())
	}
	return bitset.FromKey(k, h.taxa.Len())
}

// Taxa returns the catalogue the hash is encoded over.
func (h *FreqHash) Taxa() *taxa.Set { return h.taxa }

// NumTrees returns r, the number of reference trees.
func (h *FreqHash) NumTrees() int { return h.numTrees }

// UniqueBipartitions returns the number of distinct bipartitions stored —
// the quantity that actually bounds BFHRF's memory (paper §VII.C).
func (h *FreqHash) UniqueBipartitions() int {
	if h.oa != nil {
		return h.oa.Len()
	}
	if h.st != nil {
		return h.st.Len()
	}
	return len(h.m)
}

// FootprintBytes estimates the resident size of the hash's storage
// engine. The table backends report exact array and arena sizes; the map
// backend is an estimate (key bytes plus per-entry map overhead), good
// enough for the peak-heap accounting of benchmark records. Exposed so
// memprof measurements over pre-built hashes can include the table the
// measured region probes (see memprof.MeasureNWith).
func (h *FreqHash) FootprintBytes() int64 {
	if h.oa != nil {
		return h.oa.FootprintBytes()
	}
	if h.st != nil {
		return h.st.FootprintBytes()
	}
	// Go map internals: per entry one 16-byte string header + key bytes +
	// the 16-byte entry, plus roughly 32 bytes of bucket machinery at
	// typical load factors.
	var b int64
	for k := range h.m {
		b += int64(len(k)) + 64
	}
	return b
}

// TotalBipartitions returns sumBFHR, the total bipartition instances.
func (h *FreqHash) TotalBipartitions() uint64 { return h.sum }

// Weighted reports whether every reference bipartition carried a branch
// length (required by the weighted-RF variant).
func (h *FreqHash) Weighted() bool { return h.weighted }

// Fingerprint returns a deterministic identity of the built hash: FNV-1a
// over the taxa catalogue, the tree count, sumBFHR, and the unique
// bipartition count. Two hashes built from the same reference collection
// (any worker count, any backend) agree; any change to the references —
// a different file, trees skipped by lenient ingest, different taxa —
// disagrees with overwhelming probability. Checkpoint resume uses it to
// refuse mixing results computed against different reference sets.
// Deliberately excluded: lenSum (float accumulation order varies with
// scheduling) and the backend/compression choice (they do not affect
// results).
func (h *FreqHash) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fp := uint64(offset64)
	mix := func(b byte) { fp = (fp ^ uint64(b)) * prime64 }
	mixU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	for i := 0; i < h.taxa.Len(); i++ {
		for _, b := range []byte(h.taxa.Name(i)) {
			mix(b)
		}
		mix(0)
	}
	mixU64(uint64(h.numTrees))
	mixU64(h.sum)
	mixU64(uint64(h.UniqueBipartitions()))
	return fp
}

// entryOf returns b's stored record (zero entry if absent). The map path
// allocates a key string; hot loops use a Prober instead.
func (h *FreqHash) entryOf(b bipart.Bipartition) entry {
	if h.oa != nil {
		e, _ := h.oa.LookupHashed(b.Hash(), b.Words())
		return e
	}
	if h.st != nil {
		e, _ := h.st.Lookup(b.Words())
		return e
	}
	return h.m[h.keyOf(b)]
}

// Frequency returns the frequency of b over the reference collection
// (0 if absent, per the paper's convention BFH_R[b] = 0).
func (h *FreqHash) Frequency(b bipart.Bipartition) int {
	return int(h.entryOf(b).Freq)
}

// FrequencyByKey is Frequency for a precomputed canonical (uncompressed)
// Key() string.
func (h *FreqHash) FrequencyByKey(key string) int {
	if h.oa != nil || h.st != nil {
		mask, err := bitset.FromKey(key, h.taxa.Len())
		if err != nil {
			return 0
		}
		if h.oa != nil {
			e, _ := h.oa.Lookup(mask.Words())
			return int(e.Freq)
		}
		e, _ := h.st.Lookup(mask.Words())
		return int(e.Freq)
	}
	return int(h.m[key].Freq)
}

// SupportOf returns freq/r, the fraction of reference trees containing b.
func (h *FreqHash) SupportOf(b bipart.Bipartition) float64 {
	if h.numTrees == 0 {
		return 0
	}
	return float64(h.Frequency(b)) / float64(h.numTrees)
}

// Prober performs repeated frequency lookups with no per-probe key
// allocation: the open-addressing backend probes on the mask words
// directly, and the map backend reuses one scratch buffer via the
// map-index string-conversion optimization. A Prober is not safe for
// concurrent use; give each goroutine its own.
type Prober struct {
	h   *FreqHash
	buf []byte

	// Query-side acceleration state (see query.go): an optional shared
	// result cache keyed by topology fingerprint, the probe-path selector,
	// and per-prober scratch for fingerprinting and batched lookups (the
	// word-keyed batch for the open-addressing backend, the encoded-key
	// batch for the succinct backend).
	cache  *QueryCache
	probe  ProbeMode
	fp     fingerprinter
	batch  bfhtable.ProbeBatch
	sbatch bfhtable.SuccinctBatch
	// autoBatch memoizes ProbeAuto's table-footprint decision:
	// 0 undecided, +1 batch, -1 scalar (see Prober.batchAuto).
	autoBatch int8
}

// NewProber returns a prober bound to h with no cache attached and
// automatic probe-path selection.
func (h *FreqHash) NewProber() *Prober { return &Prober{h: h} }

// entryOf returns b's stored record without allocating.
func (p *Prober) entryOf(b bipart.Bipartition) entry {
	h := p.h
	if h.oa != nil {
		e, _ := h.oa.LookupHashed(b.Hash(), b.Words())
		return e
	}
	if h.st != nil {
		var meta uint32
		p.buf, meta = h.st.AppendEncoded(p.buf[:0], b.Words())
		e, _ := h.st.LookupEncoded(b.Hash(), p.buf, meta)
		return e
	}
	if h.compressed {
		p.buf = b.AppendCompactKey(p.buf[:0])
	} else {
		p.buf = b.AppendKey(p.buf[:0])
	}
	return h.m[string(p.buf)]
}

// Frequency is FreqHash.Frequency through the prober's scratch buffer.
func (p *Prober) Frequency(b bipart.Bipartition) int { return int(p.entryOf(b).Freq) }

// Entry describes one stored bipartition for inspection and consensus.
type Entry struct {
	Bipartition bipart.Bipartition
	Frequency   int
	// Support is Frequency / r.
	Support float64
	// MeanLength is LengthSum / Frequency when lengths were tracked.
	MeanLength float64
}

// forEachEntry yields every stored live bipartition's canonical mask and
// record, in unspecified order. The mask is freshly decoded and owned by fn.
func (h *FreqHash) forEachEntry(fn func(mask *bitset.Bits, e entry)) error {
	if h.oa != nil || h.st != nil {
		var decodeErr error
		visit := func(words []uint64, e entry) bool {
			mask, err := bitset.FromWords(words, h.taxa.Len())
			if err != nil {
				decodeErr = fmt.Errorf("core: corrupt hash words: %w", err)
				return false
			}
			fn(mask, e)
			return true
		}
		if h.oa != nil {
			h.oa.Range(visit)
		} else {
			h.st.Range(visit)
		}
		return decodeErr
	}
	for k, e := range h.m {
		mask, err := h.maskFromKey(k)
		if err != nil {
			return fmt.Errorf("core: corrupt hash key: %w", err)
		}
		fn(mask, e)
	}
	return nil
}

// Entries returns every stored bipartition with frequency at least
// minFreq, sorted by descending frequency (ties broken by key for
// determinism). minFreq <= 1 returns everything.
func (h *FreqHash) Entries(minFreq int) ([]Entry, error) {
	if minFreq < 1 {
		minFreq = 1
	}
	out := make([]Entry, 0, h.UniqueBipartitions())
	err := h.forEachEntry(func(mask *bitset.Bits, e entry) {
		if int(e.Freq) < minFreq {
			return
		}
		ent := Entry{
			Bipartition: bipart.FromMask(mask, 0),
			Frequency:   int(e.Freq),
			Support:     float64(e.Freq) / float64(h.numTrees),
		}
		if e.Freq > 0 {
			ent.MeanLength = e.LengthSum / float64(e.Freq)
		}
		out = append(out, ent)
	})
	if err != nil {
		return nil, err
	}
	// Tie-break on the canonical (uncompressed) encoding so the order — and
	// anything derived from it, like the greedy consensus — is identical
	// across backends and key schemes.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Bipartition.Key() < out[j].Bipartition.Key()
	})
	return out, nil
}

// KeySizes returns the byte length of every stored key, for memory
// accounting (the §IX compression ablation). The open-addressing backend
// stores fixed-width word keys, so every length is WordsPerKey()*8; the
// succinct backend reports each key's encoded arena length.
func (h *FreqHash) KeySizes() []int {
	if h.oa != nil {
		out := make([]int, 0, h.oa.Len())
		nb := h.oa.WordsPerKey() * 8
		h.oa.Range(func(words []uint64, e entry) bool {
			out = append(out, nb)
			return true
		})
		return out
	}
	if h.st != nil {
		out := make([]int, 0, h.st.Len())
		for s := 0; s < h.st.NumShards(); s++ {
			h.st.RangeShardEncoded(s, func(enc []byte, e entry) bool {
				out = append(out, len(enc))
				return true
			})
		}
		return out
	}
	out := make([]int, 0, len(h.m))
	for k := range h.m {
		out = append(out, len(k))
	}
	return out
}

// NumShards returns the shard count of the table backends (1 for the map
// backend, which is unsharded).
func (h *FreqHash) NumShards() int {
	if h.oa != nil {
		return h.oa.NumShards()
	}
	if h.st != nil {
		return h.st.NumShards()
	}
	return 1
}

// RangeShardRaw iterates one shard's live entries as raw mask words —
// the serialization path of the distributed snapshot (internal/distrib).
// For the map backend, shard 0 holds everything and words are decoded from
// keys. The words slice is only valid during the call.
func (h *FreqHash) RangeShardRaw(shard int, fn func(words []uint64, e entry) bool) error {
	if h.oa != nil {
		h.oa.RangeShard(shard, fn)
		return nil
	}
	if h.st != nil {
		h.st.RangeShard(shard, fn)
		return nil
	}
	if shard != 0 {
		return nil
	}
	for k, e := range h.m {
		mask, err := h.maskFromKey(k)
		if err != nil {
			return fmt.Errorf("core: corrupt hash key: %w", err)
		}
		if !fn(mask.Words(), e) {
			return nil
		}
	}
	return nil
}

// Succinct returns the succinct backend's table, or nil when another
// backend is active. The distributed snapshot path uses it to serialize
// the compressed arena and its dictionary without decoding keys.
func (h *FreqHash) Succinct() *bfhtable.SuccinctTable { return h.st }

// merge folds a worker-local frequency map into the hash (map-backend
// build phase only).
func (h *FreqHash) merge(local map[string]entry) {
	for k, le := range local {
		e := h.m[k]
		e.Freq += le.Freq
		e.Size = le.Size
		e.LengthSum += le.LengthSum
		h.m[k] = e
		h.sum += uint64(le.Freq)
		h.lenSum += le.LengthSum
	}
}

// invalidateDerived drops lazily computed state after a mutation.
func (h *FreqHash) invalidateDerived() {
	h.mu.Lock()
	h.icTable = nil
	h.icSum = 0
	h.mu.Unlock()
}
