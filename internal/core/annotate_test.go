package core

import (
	"strconv"
	"testing"

	"repro/internal/newick"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestAnnotateSupport(t *testing.T) {
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	refs := []*tree.Tree{
		newick.MustParse("((A,B),((C,D),(E,F)));"),
		newick.MustParse("((A,B),((C,D),(E,F)));"),
		newick.MustParse("((A,B),((C,E),(D,F)));"),
		newick.MustParse("((A,C),((B,D),(E,F)));"),
	}
	h := buildHash(t, refs, ts)
	target := newick.MustParse("((A,B),((C,D),(E,F)));")
	if err := h.AnnotateSupport(target, 0); err != nil {
		t.Fatal(err)
	}
	// Collect internal labels as numbers.
	labels := map[string]bool{}
	target.Postorder(func(n *tree.Node) {
		if !n.IsLeaf() && n.Name != "" {
			labels[n.Name] = true
			if _, err := strconv.ParseFloat(n.Name, 64); err != nil {
				t.Errorf("label %q is not numeric", n.Name)
			}
		}
	})
	// AB|rest appears in 3/4 trees → 75; CD|rest in 2/4 → 50;
	// EF|rest in 3/4 → 75.
	for _, want := range []string{"75", "50"} {
		if !labels[want] {
			t.Errorf("expected a %s%% support label, got %v", want, labels)
		}
	}
}

func TestAnnotateSupportSelf(t *testing.T) {
	// Annotating a tree against a hash of identical trees gives 100 on
	// every internal edge.
	trees, ts := randomCollection(44, 10, 1)
	refs := []*tree.Tree{trees[0], trees[0].Clone(), trees[0].Clone()}
	h := buildHash(t, refs, ts)
	target := trees[0].Clone()
	if err := h.AnnotateSupport(target, 0); err != nil {
		t.Fatal(err)
	}
	count := 0
	target.Postorder(func(n *tree.Node) {
		if !n.IsLeaf() && n.Parent != nil && n.Name != "" {
			count++
			if n.Name != "100" {
				t.Errorf("self-support label = %q, want 100", n.Name)
			}
		}
	})
	if count == 0 {
		t.Error("no internal edges annotated")
	}
}

func TestAnnotateSupportUnknownLeaf(t *testing.T) {
	trees, ts := randomCollection(2, 8, 3)
	h := buildHash(t, trees, ts)
	bad := newick.MustParse("((A,B),(C,D));")
	if err := h.AnnotateSupport(bad, 0); err == nil {
		t.Error("foreign leaves should fail")
	}
}

func TestAnnotateRoundTripsThroughNewick(t *testing.T) {
	trees, ts := randomCollection(66, 12, 20)
	h := buildHash(t, trees, ts)
	target := trees[0].Clone()
	if err := h.AnnotateSupport(target, 1); err != nil {
		t.Fatal(err)
	}
	out := newick.String(target, newick.DefaultWriteOptions())
	back, err := newick.Parse(out)
	if err != nil {
		t.Fatalf("annotated tree does not reparse: %v\n%s", err, out)
	}
	if back.NumLeaves() != 12 {
		t.Error("leaves lost through annotation round trip")
	}
}
