package core

import (
	"testing"

	"repro/internal/obs/obstest"
)

// TestMain gates the suite on span hygiene: any span started by core
// code and never ended fails the run (see internal/obs/obstest).
func TestMain(m *testing.M) { obstest.Main(m) }
