package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bipart"
)

// FuzzFingerprint hunts for the two ways the topology fingerprint can lie:
// a collision (two differing canonical bipartition sets with equal
// TopoKeys — a cache hit returning another topology's answer) and a
// non-determinism (the same set fingerprinting differently across call
// paths or element orders — a cache that never hits). The input bytes are
// the raw mask bits, so the fuzzer controls the hashed words directly;
// widths span one- and two-word masks, the two code paths of
// bipart.Bipartition's construction-time hash.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{64, 3, 3, 0b0110, 0b1010, 0b0110, 0b0110, 0b1100, 0b0011})
	f.Add([]byte{100, 16, 16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 4 + int(data[0])%124 // 4..127 taxa: one- and two-word masks
		nw := (n + 63) / 64
		nb := (n + 7) / 8 // mask bytes consumed per bipartition
		ca := int(data[1])%16 + 1
		cb := int(data[2])%16 + 1
		data = data[3:]

		// take decodes count masks from the stream into a deduped
		// canonical bipartition set (the extractor never emits duplicates,
		// so the fingerprint's contract is over sets).
		take := func(count int) []bipart.Bipartition {
			set := make(map[string]bipart.Bipartition)
			for i := 0; i < count && len(data) >= nb; i++ {
				words := make([]uint64, nw)
				for j, c := range data[:nb] {
					words[j/8] |= uint64(c) << (8 * (j % 8))
				}
				data = data[nb:]
				if rem := n % 64; rem != 0 {
					words[nw-1] &= (uint64(1)<<rem - 1)
				}
				bp, err := bipartFromWords(words, n)
				if err != nil {
					t.Fatalf("masked words rejected: %v", err)
				}
				set[bp.Key()] = bp
			}
			out := make([]bipart.Bipartition, 0, len(set))
			for _, bp := range set { // map range order: already shuffled
				out = append(out, bp)
			}
			return out
		}
		keysOf := func(bs []bipart.Bipartition) []string {
			ks := make([]string, len(bs))
			for i, b := range bs {
				ks[i] = b.Key()
			}
			slices.Sort(ks)
			return ks
		}

		a := take(ca)
		b := take(cb)
		fa := TopologyFingerprint(a)
		fb := TopologyFingerprint(b)

		sameSet := slices.Equal(keysOf(a), keysOf(b))
		if sameSet && fa != fb {
			t.Fatalf("equal sets, unequal fingerprints: %+v vs %+v", fa, fb)
		}
		if !sameSet && fa == fb {
			t.Fatalf("fingerprint collision between differing sets (|a|=%d |b|=%d): %+v", len(a), len(b), fa)
		}

		// Order invariance: a deterministic shuffle must not move the key.
		rand.New(rand.NewSource(int64(fa.Lo))).Shuffle(len(a), func(i, j int) {
			a[i], a[j] = a[j], a[i]
		})
		if got := TopologyFingerprint(a); got != fa {
			t.Fatalf("shuffle changed fingerprint: %+v vs %+v", got, fa)
		}

		// Path agreement: the prober's scratch-reusing fingerprinter must
		// match the one-shot entry point, including across consecutive
		// sets of different sizes on the same scratch.
		var fp fingerprinter
		if got := fp.key(b); got != fb {
			t.Fatalf("fingerprinter.key(b) = %+v, want %+v", got, fb)
		}
		if got := fp.key(a); got != fa {
			t.Fatalf("fingerprinter.key(a) = %+v, want %+v", got, fa)
		}
	})
}
