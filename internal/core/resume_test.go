package core

import (
	"errors"
	"os"
	"sync"
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/tree"
)

func resumeTestTrees(t *testing.T) []*tree.Tree {
	t.Helper()
	srcs := []string{
		"((a,b),(c,d),e);",
		"((a,c),(b,d),e);",
		"((a,d),(b,c),e);",
		"((a,e),(b,c),d);",
	}
	out := make([]*tree.Tree, len(srcs))
	for i, s := range srcs {
		out[i] = newick.MustParse(s)
	}
	return out
}

func buildResumeHash(t *testing.T, workers int) *FreqHash {
	t.Helper()
	src := collection.FromTrees(resumeTestTrees(t))
	ts, err := collection.ScanTaxa(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(src, ts, BuildOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFingerprintDeterministic(t *testing.T) {
	fp1 := buildResumeHash(t, 1).Fingerprint()
	fp4 := buildResumeHash(t, 4).Fingerprint()
	if fp1 != fp4 {
		t.Fatalf("fingerprint varies with worker count: %016x vs %016x", fp1, fp4)
	}
	// A different reference set must disagree.
	src := collection.FromTrees(resumeTestTrees(t)[:3])
	ts, err := collection.ScanTaxa(src)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Build(src, ts, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Fingerprint() == fp1 {
		t.Fatal("different reference sets share a fingerprint")
	}
}

func TestQuerySkip(t *testing.T) {
	h := buildResumeHash(t, 2)
	q := collection.FromTrees(resumeTestTrees(t))

	full, err := h.AverageRF(q, QueryOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := h.AverageRF(q, QueryOptions{
		Workers: 2,
		Skip:    func(idx int) bool { return idx%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 2 {
		t.Fatalf("got %d results with skip, want 2", len(skipped))
	}
	for _, r := range skipped {
		if r.Index%2 == 0 {
			t.Fatalf("skipped index %d still computed", r.Index)
		}
		if r.AvgRF != full[r.Index].AvgRF {
			t.Fatalf("index %d: skip run %v != full run %v", r.Index, r.AvgRF, full[r.Index].AvgRF)
		}
	}
}

func TestQueryOnResult(t *testing.T) {
	h := buildResumeHash(t, 2)
	var mu sync.Mutex
	seen := map[int]float64{}
	results, err := h.AverageRF(collection.FromTrees(resumeTestTrees(t)), QueryOptions{
		Workers: 3,
		OnResult: func(r Result) {
			mu.Lock()
			seen[r.Index] = r.AvgRF
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(results) {
		t.Fatalf("OnResult saw %d results, returned %d", len(seen), len(results))
	}
	for _, r := range results {
		if seen[r.Index] != r.AvgRF {
			t.Fatalf("OnResult value mismatch at %d", r.Index)
		}
	}
}

func TestQueryCancel(t *testing.T) {
	h := buildResumeHash(t, 1)
	cancel := make(chan struct{})
	close(cancel) // canceled before the first query is fed
	results, err := h.AverageRF(collection.FromTrees(resumeTestTrees(t)), QueryOptions{
		Workers: 2,
		Cancel:  cancel,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if len(results) != 0 {
		t.Fatalf("pre-canceled run computed %d results", len(results))
	}
}

func TestQuerySkipRawPath(t *testing.T) {
	// File-backed plain Newick exercises averageRFRaw.
	dir := t.TempDir()
	path := dir + "/q.nwk"
	content := "((a,b),(c,d),e);\n((a,c),(b,d),e);\n((a,d),(b,c),e);\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := collection.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	h := buildResumeHash(t, 2)
	full, err := h.AverageRF(src, QueryOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 3 {
		t.Fatalf("raw full run: %d results", len(full))
	}
	part, err := h.AverageRF(src, QueryOptions{
		Workers: 2,
		Skip:    func(idx int) bool { return idx == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 2 || part[0].Index != 0 || part[1].Index != 2 {
		t.Fatalf("raw skip run: %+v", part)
	}
	for _, r := range part {
		if r.AvgRF != full[r.Index].AvgRF {
			t.Fatalf("raw skip mismatch at %d", r.Index)
		}
	}
}
