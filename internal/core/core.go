// Package core implements BFHRF — Bipartition Frequency Hash
// Robinson-Foulds — the paper's primary contribution (Algorithm 2).
//
// Instead of comparing every query tree against every reference tree
// (q·r tree-vs-tree comparisons), BFHRF builds a single hash from canonical
// bipartition encodings to their frequency over the reference collection R
// (the BFH), then answers each query with one tree-vs-hash comparison:
//
//	RFleft  = Σfreq − Σ_{b'∈B(T')} freq[b']        (reference splits absent from T')
//	RFright = Σ_{b'∈B(T')} (r − freq[b'])          (query splits absent from references)
//	avgRF(T') = (RFleft + RFright) / r
//
// Time is O(max(n²r, n²q)); space is proportional to the number of unique
// bipartitions rather than to r·q or r². The hash keys are exact canonical
// bitmasks, so the structure is collision-free and non-transformative:
// every extensibility hook of traditional RF (different Q and R, filters,
// weighting, variable taxa after intersection reduction) applies unchanged,
// and consensus structures can be read directly off the hash.
package core
