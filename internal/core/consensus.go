package core

import (
	"fmt"

	"repro/internal/bipart"
	"repro/internal/tree"
)

// Consensus builds the threshold consensus tree directly from the
// frequency hash — one of the "other applications of directly using a BFH"
// the paper proposes (§IX). A bipartition is included when its support
// (frequency / r) strictly exceeds threshold; threshold 0.5 yields the
// classic majority-rule consensus.
//
// threshold must be at least 0.5: strict majority guarantees the selected
// splits are pairwise compatible and therefore realizable as one tree.
// Consensus edges carry the mean branch length of the bipartition across
// the reference trees when lengths were tracked.
func (h *FreqHash) Consensus(threshold float64) (*tree.Tree, error) {
	if threshold < 0.5 || threshold >= 1.0000001 {
		return nil, fmt.Errorf("core: consensus threshold %v out of [0.5, 1]", threshold)
	}
	if h.taxa.Len() < 2 {
		return nil, fmt.Errorf("core: consensus needs at least 2 taxa")
	}
	minFreq := int(threshold*float64(h.numTrees)) + 1
	entries, err := h.Entries(minFreq)
	if err != nil {
		return nil, err
	}
	var splits []bipart.Bipartition
	for _, e := range entries {
		// Entries is >= minFreq; enforce strict support > threshold.
		if e.Support <= threshold {
			continue
		}
		b := e.Bipartition
		if e.MeanLength > 0 {
			b.Length, b.HasLength = e.MeanLength, true
		}
		splits = append(splits, b)
	}
	t, err := h.treeFromSplits(splits)
	if err != nil {
		return nil, fmt.Errorf("core: consensus construction: %w", err)
	}
	return t, nil
}
