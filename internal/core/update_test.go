package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/tree"
)

// TestAddTreeMatchesRebuild: incrementally grown hashes must be
// indistinguishable from hashes built from scratch.
func TestAddTreeMatchesRebuild(t *testing.T) {
	trees, ts := randomCollection(121, 14, 30)
	grown := buildHash(t, trees[:10], ts)
	for _, tr := range trees[10:] {
		if err := grown.AddTree(tr, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	full := buildHash(t, trees, ts)

	if grown.NumTrees() != full.NumTrees() {
		t.Fatalf("r = %d vs %d", grown.NumTrees(), full.NumTrees())
	}
	if grown.UniqueBipartitions() != full.UniqueBipartitions() {
		t.Fatalf("unique = %d vs %d", grown.UniqueBipartitions(), full.UniqueBipartitions())
	}
	if grown.TotalBipartitions() != full.TotalBipartitions() {
		t.Fatalf("sum = %d vs %d", grown.TotalBipartitions(), full.TotalBipartitions())
	}
	src := collection.FromTrees(trees)
	rg, err := grown.AverageRF(src, QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.AverageRF(src, QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rg {
		if rg[i].AvgRF != rf[i].AvgRF {
			t.Errorf("tree %d: grown %v vs rebuilt %v", i, rg[i].AvgRF, rf[i].AvgRF)
		}
	}
}

// TestRemoveTreeInverse: add then remove restores the original hash.
func TestRemoveTreeInverse(t *testing.T) {
	trees, ts := randomCollection(7, 12, 12)
	h := buildHash(t, trees[:10], ts)
	beforeUnique := h.UniqueBipartitions()
	beforeSum := h.TotalBipartitions()
	beforeR := h.NumTrees()

	if err := h.AddTree(trees[10], nil, true); err != nil {
		t.Fatal(err)
	}
	if err := h.AddTree(trees[11], nil, true); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveTree(trees[11], nil, true); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveTree(trees[10], nil, true); err != nil {
		t.Fatal(err)
	}
	if h.UniqueBipartitions() != beforeUnique || h.TotalBipartitions() != beforeSum || h.NumTrees() != beforeR {
		t.Errorf("hash not restored: unique %d→%d, sum %d→%d, r %d→%d",
			beforeUnique, h.UniqueBipartitions(), beforeSum, h.TotalBipartitions(), beforeR, h.NumTrees())
	}
	// Distances equal a from-scratch hash of the first 10 trees.
	base := buildHash(t, trees[:10], ts)
	got, err := h.AverageRFOne(trees[0], QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.AverageRFOne(trees[0], QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("after add/remove cycle: %v, fresh: %v", got, want)
	}
}

func TestRemoveTreeDetectsForeignTree(t *testing.T) {
	refs := []string{"((A,B),(C,D));", "((A,B),(C,D));"}
	h := buildHash(t, parseTrees(refs), abcd)
	foreign := newick.MustParse("((A,C),(B,D));")
	if err := h.RemoveTree(foreign, nil, true); err == nil {
		t.Error("removing a tree that was never added must fail")
	}
	// The failed removal must not have mutated the hash.
	if h.NumTrees() != 2 || h.TotalBipartitions() != 2 {
		t.Errorf("hash mutated by failed removal: r=%d sum=%d", h.NumTrees(), h.TotalBipartitions())
	}
}

func TestRemoveTreeEmptyHash(t *testing.T) {
	h := buildHash(t, parseTrees([]string{"((A,B),(C,D));"}), abcd)
	if err := h.RemoveTree(newick.MustParse("((A,B),(C,D));"), nil, true); err != nil {
		t.Fatal(err)
	}
	if h.NumTrees() != 0 {
		t.Fatalf("r = %d", h.NumTrees())
	}
	if err := h.RemoveTree(newick.MustParse("((A,B),(C,D));"), nil, true); err == nil {
		t.Error("removing from an empty hash must fail")
	}
}

func TestAddTreeUnweightedFlips(t *testing.T) {
	h := buildHash(t, parseTrees([]string{"((A:1,B:1):1,(C:1,D:1):1);"}), abcd)
	if !h.Weighted() {
		t.Fatal("weighted hash expected")
	}
	if err := h.AddTree(newick.MustParse("((A,C),(B,D));"), nil, true); err != nil {
		t.Fatal(err)
	}
	if h.Weighted() {
		t.Error("adding an unweighted tree must clear the weighted flag")
	}
}

// parseTrees is a small helper for literal collections.
func parseTrees(newicks []string) []*tree.Tree {
	out := make([]*tree.Tree, len(newicks))
	for i, s := range newicks {
		out[i] = newick.MustParse(s)
	}
	return out
}
