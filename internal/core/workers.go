package core

import "repro/internal/collection"

// EffectiveWorkers is collection.EffectiveWorkers: the shared
// small-workload clamp (at most one worker per 64 trees). Re-exported here
// because core is where most callers configure worker counts.
func EffectiveWorkers(requested, trees int) int {
	return collection.EffectiveWorkers(requested, trees)
}

// sourceLen returns the tree count of a source when it is known without
// a scan (via collection.Counter), else -1. Build and AverageRF use it to
// clamp workers; a full counting pass would cost more than it saves.
func sourceLen(src collection.Source) int {
	if c, ok := src.(collection.Counter); ok {
		return c.Count()
	}
	return -1
}
