package core

import (
	"math/rand"
	"testing"

	"repro/internal/collection"
	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestConsensusUnanimous(t *testing.T) {
	// All references identical → consensus is that topology.
	ref := "((A,B),((C,D),(E,F)));"
	trees := []*tree.Tree{newick.MustParse(ref), newick.MustParse(ref), newick.MustParse(ref)}
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	h := buildHash(t, trees, ts)
	cons, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := day.MustRF(cons, trees[0]); d != 0 {
		t.Errorf("consensus differs from unanimous input: RF = %d", d)
	}
}

func TestConsensusMajority(t *testing.T) {
	// 2 of 3 trees share AB|CDEF and CD|ABEF; the third disagrees.
	a := "((A,B),((C,D),(E,F)));"
	b := "(((A,B),(C,D)),(E,F));" // same unrooted topology as a
	c := "((A,C),((B,D),(E,F)));" // different
	trees := []*tree.Tree{newick.MustParse(a), newick.MustParse(b), newick.MustParse(c)}
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	h := buildHash(t, trees, ts)
	cons, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The consensus must match the majority topology exactly (a and b are
	// the same unrooted tree, so all three of its splits have support 2/3).
	if d := day.MustRF(cons, trees[0]); d != 0 {
		t.Errorf("majority consensus RF to majority topology = %d, want 0", d)
	}
	if d := day.MustRF(cons, trees[2]); d == 0 {
		t.Error("consensus should differ from the minority topology")
	}
}

func TestConsensusStarOnTotalDisagreement(t *testing.T) {
	// Three different quartet resolutions: no split reaches majority.
	trees := []*tree.Tree{
		newick.MustParse("((A,B),(C,D));"),
		newick.MustParse("((A,C),(B,D));"),
		newick.MustParse("((A,D),(B,C));"),
	}
	h := buildHash(t, trees, abcd)
	cons, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Star tree: root with 4 leaf children, no internal edges.
	if cons.NumInternalEdges() != 0 {
		t.Errorf("consensus of total disagreement should be a star, has %d internal edges",
			cons.NumInternalEdges())
	}
	if cons.NumLeaves() != 4 {
		t.Errorf("consensus lost taxa: %d", cons.NumLeaves())
	}
}

func TestConsensusThresholds(t *testing.T) {
	// 3 copies of topology X, 1 of topology Y: X's splits have support
	// 0.75. At threshold 0.5 they appear; at 0.8 they do not.
	x := "((A,B),((C,D),(E,F)));"
	y := "((A,F),((C,E),(B,D)));"
	trees := []*tree.Tree{
		newick.MustParse(x), newick.MustParse(x), newick.MustParse(x), newick.MustParse(y),
	}
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	h := buildHash(t, trees, ts)
	lo, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lo.NumInternalEdges() != 3 {
		t.Errorf("0.5 consensus internal edges = %d, want 3", lo.NumInternalEdges())
	}
	hi, err := h.Consensus(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if hi.NumInternalEdges() != 0 {
		t.Errorf("0.8 consensus internal edges = %d, want 0", hi.NumInternalEdges())
	}
}

func TestConsensusInvalidThreshold(t *testing.T) {
	trees, ts := randomCollection(9, 8, 4)
	h := buildHash(t, trees, ts)
	for _, bad := range []float64{0.49, 0.0, -1, 1.5} {
		if _, err := h.Consensus(bad); err == nil {
			t.Errorf("threshold %v should be rejected", bad)
		}
	}
}

func TestConsensusValidOnMSC(t *testing.T) {
	// Consensus over a concordant MSC collection recovers most of the
	// species tree and is always a valid tree containing all taxa.
	ts := taxa.Generate(20)
	msc := simphy.NewMSCCollection(ts, 404, 1.0)
	simphy.ScaleMeanInternal(msc.Species, 2.0) // concordant regime
	trees := make([]*tree.Tree, 60)
	for i := range trees {
		trees[i] = msc.Make(i)
	}
	h, err := BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.Validate(); err != nil {
		t.Fatalf("consensus invalid: %v", err)
	}
	if cons.NumLeaves() != 20 {
		t.Errorf("consensus leaves = %d, want 20", cons.NumLeaves())
	}
	if cons.NumInternalEdges() < 10 {
		t.Errorf("concordant collection should give a mostly resolved consensus, got %d internal edges",
			cons.NumInternalEdges())
	}
}

func TestConsensusDeterministic(t *testing.T) {
	trees, ts := randomCollection(15, 10, 9)
	h := buildHash(t, trees, ts)
	c1, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newick.String(c1, newick.WriteOptions{})
	s2 := newick.String(c2, newick.WriteOptions{})
	if s1 != s2 {
		t.Errorf("consensus not deterministic:\n%s\n%s", s1, s2)
	}
}

func TestConsensusRandomizedAgainstCountingOracle(t *testing.T) {
	// For random collections, every consensus split's support must exceed
	// 0.5 when checked by brute force against the collection.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(10)
		r := 3 + rng.Intn(12)
		trees, ts := randomCollection(rng.Int63(), n, r)
		h := buildHash(t, trees, ts)
		cons, err := h.Consensus(0.5)
		if err != nil {
			t.Fatal(err)
		}
		// Every split in the consensus must be in a strict majority of the
		// input trees: RF(cons, T) counts; use direct frequency check.
		entries, err := h.Entries(0)
		if err != nil {
			t.Fatal(err)
		}
		wantEdges := 0
		for _, e := range entries {
			if e.Support > 0.5 {
				wantEdges++
			}
		}
		if got := cons.NumInternalEdges(); got != wantEdges {
			t.Errorf("trial %d: consensus has %d internal edges, want %d", trial, got, wantEdges)
		}
	}
}
