package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Property tests over the RF variants: each variant's defining invariants
// must hold on arbitrary random collections.

func TestQuickNormalizedBounds(t *testing.T) {
	f := func(seed int64, sz, rsz uint8) bool {
		n := int(sz)%20 + 5
		r := int(rsz)%10 + 2
		trees, ts := randomCollection(seed, n, r)
		h, err := BuildDefault(collection.FromTrees(trees), ts)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x55))
		q := simphy.RandomBinary(ts, rng)
		v, err := h.AverageRFOne(q, QueryOptions{Variant: Normalized, RequireComplete: true})
		if err != nil {
			return false
		}
		return v >= -1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickWeightedMatchesSetOracle: the hash-decomposed weighted distance
// equals the mean of per-tree set computations (unshared-length mass).
func TestQuickWeightedMatchesSetOracle(t *testing.T) {
	f := func(seed int64, sz, rsz uint8) bool {
		n := int(sz)%12 + 5
		r := int(rsz)%8 + 1
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		mk := func() *tree.Tree {
			tr := simphy.RandomBinary(ts, rng)
			// Randomize branch lengths.
			tr.Postorder(func(nd *tree.Node) {
				if nd.Parent != nil {
					nd.Length = rng.Float64()*3 + 0.01
					nd.HasLength = true
				}
			})
			return tr
		}
		refs := make([]*tree.Tree, r)
		for i := range refs {
			refs[i] = mk()
		}
		q := mk()
		h, err := BuildDefault(collection.FromTrees(refs), ts)
		if err != nil {
			return false
		}
		got, err := h.AverageRFOne(q, QueryOptions{Variant: Weighted, RequireComplete: true})
		if err != nil {
			return false
		}
		// Oracle: mean over refs of (unshared ref mass + unshared query mass).
		ex := bipart.NewExtractor(ts)
		qset := bipart.SetOf(ex.MustExtract(q))
		want := 0.0
		for _, ref := range refs {
			rset := bipart.SetOf(ex.MustExtract(ref))
			d := 0.0
			rset.Each(func(b bipart.Bipartition) {
				if !qset.Contains(b) {
					d += b.Length
				}
			})
			qset.Each(func(b bipart.Bipartition) {
				if !rset.Contains(b) {
					d += b.Length
				}
			})
			want += d
		}
		want /= float64(r)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickInfoMonotoneInDisagreement: adding a disagreeing tree to the
// reference collection never lowers a fixed query's plain average... this
// does not hold pointwise for arbitrary trees, so instead check a sharper
// invariant: the plain average of the query against r copies of itself is
// exactly 0 and grows when one disagreeing tree joins.
func TestQuickSelfCollectionZero(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%15 + 5
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		q := simphy.RandomBinary(ts, rng)
		copies := []*tree.Tree{q.Clone(), q.Clone(), q.Clone()}
		h, err := BuildDefault(collection.FromTrees(copies), ts)
		if err != nil {
			return false
		}
		v, err := h.AverageRFOne(q, QueryOptions{RequireComplete: true})
		if err != nil || v != 0 {
			return false
		}
		other := simphy.RandomBinary(ts, rng)
		if err := h.AddTree(other, nil, true); err != nil {
			return false
		}
		v2, err := h.AverageRFOne(q, QueryOptions{RequireComplete: true})
		if err != nil {
			return false
		}
		return v2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickHashStatsInvariant: sumBFHR == Σ freq over entries, and every
// frequency is in [1, r].
func TestQuickHashStatsInvariant(t *testing.T) {
	f := func(seed int64, sz, rsz uint8) bool {
		n := int(sz)%15 + 4
		r := int(rsz)%12 + 1
		trees, ts := randomCollection(seed, n, r)
		h, err := BuildDefault(collection.FromTrees(trees), ts)
		if err != nil {
			return false
		}
		entries, err := h.Entries(0)
		if err != nil {
			return false
		}
		var sum uint64
		for _, e := range entries {
			if e.Frequency < 1 || e.Frequency > r {
				return false
			}
			sum += uint64(e.Frequency)
		}
		return sum == h.TotalBipartitions() && len(entries) == h.UniqueBipartitions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
