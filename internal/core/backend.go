package core

import (
	"repro/internal/bfhtable"
	"repro/internal/bipart"
)

// This file holds the build-phase plumbing shared by the tree-object path
// (build.go) and the parallel-parse raw path (rawbuild.go): backend
// resolution, the per-worker accumulator, and the final fold into the hash.

// resolveBackend picks the concrete engine for the build options.
func (o BuildOptions) resolveBackend() Backend {
	b := o.Backend
	if b == BackendAuto {
		if o.CompressKeys {
			return BackendMap
		}
		return BackendOpenAddressing
	}
	return b
}

// shardCount picks the open-addressing shard count: explicit HashShards,
// else one shard per build worker so worker-local tables merge with full
// shard parallelism (bfhtable clamps to a power of two in [1, 256]).
func (o BuildOptions) shardCount(workers int) int {
	if o.HashShards > 0 {
		return o.HashShards
	}
	return workers
}

// buildAccum is one build worker's backend-local accumulator: a private
// map or a private sharded table, plus the tallies folded into the hash
// once at the end. No locks anywhere on the insert path.
type buildAccum struct {
	local    map[string]entry
	tbl      *bfhtable.Table
	weighted bool
	lenSum   float64
	trees    int
	bips     int
}

// newBuildAccum returns a worker accumulator for h's backend. wordsPerKey
// and shards only matter for the open-addressing engine.
func newBuildAccum(h *FreqHash, wordsPerKey, shards int) *buildAccum {
	a := &buildAccum{weighted: true}
	if h.oa != nil {
		a.tbl = bfhtable.New(wordsPerKey, shards)
	} else {
		a.local = make(map[string]entry)
	}
	return a
}

// add folds one extracted tree's bipartitions.
func (a *buildAccum) add(h *FreqHash, bs []bipart.Bipartition) {
	a.trees++
	a.bips += len(bs)
	if a.tbl != nil {
		for _, b := range bs {
			length := 0.0
			if b.HasLength {
				length = b.Length
			} else {
				a.weighted = false
			}
			a.tbl.Add(b.Words(), uint32(b.Size()), length)
			a.lenSum += length
		}
		return
	}
	for _, b := range bs {
		k := h.keyOf(b)
		e := a.local[k]
		e.Freq++
		e.Size = uint32(b.Size())
		if b.HasLength {
			e.LengthSum += b.Length
		} else {
			a.weighted = false
		}
		a.local[k] = e
	}
}

// finishBuild folds every worker accumulator into the hash. Map-backend
// locals fold serially (the legacy ablation baseline); open-addressing
// tables merge shard-parallel via bfhtable.Merge. Returns the total
// bipartition instances folded, for the build metrics.
func (h *FreqHash) finishBuild(accums []*buildAccum) int {
	bips := 0
	var tbls []*bfhtable.Table
	for _, a := range accums {
		h.numTrees += a.trees
		bips += a.bips
		if !a.weighted {
			h.weighted = false
		}
		if a.tbl != nil {
			tbls = append(tbls, a.tbl)
			h.sum += uint64(a.bips)
			h.lenSum += a.lenSum
		} else {
			h.merge(a.local)
		}
	}
	if tbls != nil {
		h.oa = bfhtable.Merge(tbls)
	}
	return bips
}
