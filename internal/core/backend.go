package core

import (
	"repro/internal/bfhtable"
	"repro/internal/bipart"
)

// This file holds the build-phase plumbing shared by the tree-object path
// (build.go) and the parallel-parse raw path (rawbuild.go): backend
// resolution, the per-worker accumulator, and the final fold into the hash.

// autoSuccinctKeyBytes is the raw key width (wordsPerKey*8) from which
// BackendAuto prefers the succinct backend: at 256 bytes per key
// (catalogues past ~2000 taxa) the open-addressing arena dominates the
// heap and the compressed arena's ~10–20× smaller keys buy far more than
// the encode-per-probe costs.
const autoSuccinctKeyBytes = 256

// resolveBackendFor picks the concrete engine for the build options over
// a catalogue of nTaxa taxa.
func (o BuildOptions) resolveBackendFor(nTaxa int) Backend {
	b := o.Backend
	if b == BackendAuto {
		if o.CompressKeys {
			return BackendMap
		}
		if ((nTaxa+63)/64)*8 >= autoSuccinctKeyBytes {
			return BackendSuccinct
		}
		return BackendOpenAddressing
	}
	return b
}

// shardCount picks the open-addressing shard count: explicit HashShards,
// else one shard per build worker so worker-local tables merge with full
// shard parallelism (bfhtable clamps to a power of two in [1, 256]).
func (o BuildOptions) shardCount(workers int) int {
	if o.HashShards > 0 {
		return o.HashShards
	}
	return workers
}

// buildAccum is one build worker's backend-local accumulator: a private
// map or a private sharded table, plus the tallies folded into the hash
// once at the end. No locks anywhere on the insert path.
type buildAccum struct {
	local    map[string]entry
	tbl      *bfhtable.Table
	stbl     *bfhtable.SuccinctTable
	weighted bool
	lenSum   float64
	trees    int
	bips     int
}

// newBuildAccum returns a worker accumulator for h's backend. wordsPerKey
// and shards only matter for the table engines.
func newBuildAccum(h *FreqHash, wordsPerKey, shards int) *buildAccum {
	a := &buildAccum{weighted: true}
	switch {
	case h.oa != nil:
		a.tbl = bfhtable.New(wordsPerKey, shards)
	case h.st != nil:
		a.stbl = bfhtable.NewSuccinct(h.taxa.Len(), shards)
	default:
		a.local = make(map[string]entry)
	}
	return a
}

// add folds one extracted tree's bipartitions.
func (a *buildAccum) add(h *FreqHash, bs []bipart.Bipartition) {
	a.trees++
	a.bips += len(bs)
	if a.tbl != nil {
		for _, b := range bs {
			length := 0.0
			if b.HasLength {
				length = b.Length
			} else {
				a.weighted = false
			}
			a.tbl.Add(b.Words(), uint32(b.Size()), length)
			a.lenSum += length
		}
		return
	}
	if a.stbl != nil {
		for _, b := range bs {
			length := 0.0
			if b.HasLength {
				length = b.Length
			} else {
				a.weighted = false
			}
			a.stbl.Add(b.Words(), uint32(b.Size()), length)
			a.lenSum += length
		}
		return
	}
	for _, b := range bs {
		k := h.keyOf(b)
		e := a.local[k]
		e.Freq++
		e.Size = uint32(b.Size())
		if b.HasLength {
			e.LengthSum += b.Length
		} else {
			a.weighted = false
		}
		a.local[k] = e
	}
}

// finishBuild folds every worker accumulator into the hash. Map-backend
// locals fold serially (the legacy ablation baseline); both table
// backends merge shard-parallel. The merged succinct table is frozen
// here — the one point where the whole key population exists, so the
// shared-prefix dictionary is minted once, deterministically. Returns the
// total bipartition instances folded, for the build metrics.
func (h *FreqHash) finishBuild(accums []*buildAccum) int {
	bips := 0
	var tbls []*bfhtable.Table
	var stbls []*bfhtable.SuccinctTable
	for _, a := range accums {
		h.numTrees += a.trees
		bips += a.bips
		if !a.weighted {
			h.weighted = false
		}
		switch {
		case a.tbl != nil:
			tbls = append(tbls, a.tbl)
			h.sum += uint64(a.bips)
			h.lenSum += a.lenSum
		case a.stbl != nil:
			stbls = append(stbls, a.stbl)
			h.sum += uint64(a.bips)
			h.lenSum += a.lenSum
		default:
			h.merge(a.local)
		}
	}
	if tbls != nil {
		h.oa = bfhtable.Merge(tbls)
	}
	if stbls != nil {
		h.st = bfhtable.MergeSuccinct(stbls)
		h.st.Freeze()
	}
	return bips
}
