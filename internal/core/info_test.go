package core

import (
	"math"
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestSplitInformationValues(t *testing.T) {
	// n=6: total unrooted binary trees (2·6−5)!! = 7!! = 105.
	// A 2|4 split is in (2·2−3)!!·(2·4−3)!! = 1·15 = 15 of them:
	// h = log2(105/15) = log2 7.
	got := SplitInformation(6, 2)
	want := math.Log2(7)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("h(6,2) = %v, want log2 7 = %v", got, want)
	}
	// A 3|3 split: (2·3−3)!!² = 9 trees contain it: h = log2(105/9).
	got = SplitInformation(6, 3)
	want = math.Log2(105.0 / 9.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("h(6,3) = %v, want %v", got, want)
	}
	// Balanced splits are rarer, hence more informative.
	if SplitInformation(20, 10) <= SplitInformation(20, 2) {
		t.Error("balanced split should carry more information than a shallow one")
	}
	// Trivial splits carry none.
	if SplitInformation(10, 1) != 0 || SplitInformation(10, 9) != 0 {
		t.Error("trivial splits must have zero information")
	}
}

func TestInfoRFAgainstDirectComputation(t *testing.T) {
	// One reference tree: icRF must equal the direct sum of h over the
	// symmetric difference.
	ts := taxaSix()
	ref := newick.MustParse("((A,B),((C,D),(E,F)));")
	qt := newick.MustParse("((A,C),((B,D),(E,F)));")
	h := buildHash(t, []*tree.Tree{ref}, ts)
	got, err := h.InfoRFOne(qt, QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	// Shared: EF|rest (h(6,2)). Unshared: ref has AB|.. and CD|..;
	// query has AC|.. and BD|.. → 4 unshared splits, each a 2|4 split.
	want := 4 * SplitInformation(6, 2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("icRF = %v, want %v", got, want)
	}
	// Identical tree → 0.
	same, err := h.InfoRFOne(ref.Clone(), QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if same != 0 {
		t.Errorf("icRF(self) = %v, want 0", same)
	}
}

func taxaSix() *taxa.Set { return taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"}) }

func TestInfoRFAverage(t *testing.T) {
	trees, ts := randomCollection(55, 12, 20)
	h := buildHash(t, trees, ts)
	res, err := h.AverageInfoRF(collection.FromTrees(trees), QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("results = %d", len(res))
	}
	// Cross-check tree 0 against the definitional mean over single-ref
	// hashes.
	direct := 0.0
	for _, ref := range trees {
		h1 := buildHash(t, []*tree.Tree{ref}, ts)
		v, err := h1.InfoRFOne(trees[0], QueryOptions{RequireComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		direct += v
	}
	direct /= float64(len(trees))
	if math.Abs(res[0].AvgRF-direct) > 1e-9 {
		t.Errorf("avg icRF = %v, direct mean = %v", res[0].AvgRF, direct)
	}
}

func TestInfoRFNonNegativeAndMonotone(t *testing.T) {
	trees, ts := randomCollection(66, 15, 10)
	h := buildHash(t, trees, ts)
	for i, tr := range trees {
		v, err := h.InfoRFOne(tr, QueryOptions{RequireComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if v < -1e-9 {
			t.Errorf("tree %d: negative information distance %v", i, v)
		}
	}
}

func TestInfoRFAfterUpdateInvalidation(t *testing.T) {
	// The cached information mass must be recomputed after AddTree.
	trees, ts := randomCollection(3, 10, 5)
	h := buildHash(t, trees[:4], ts)
	before, err := h.InfoRFOne(trees[0], QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddTree(trees[4], nil, true); err != nil {
		t.Fatal(err)
	}
	after, err := h.InfoRFOne(trees[0], QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild from scratch over all 5 — must equal the updated hash.
	h5 := buildHash(t, trees, ts)
	want, err := h5.InfoRFOne(trees[0], QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-want) > 1e-9 {
		t.Errorf("after AddTree: %v, rebuilt: %v (before: %v)", after, want, before)
	}
}
