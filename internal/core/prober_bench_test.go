package core

import (
	"testing"

	"repro/internal/bipart"
	"repro/internal/collection"
)

// benchSplits builds a hash over a synthetic collection and returns the
// same trees' pre-extracted bipartition sets — the measured region of the
// BFHRF-OA/BFHRF-MAP perf engines, reproduced here at benchmark scale so
// `go test -bench Prober` localizes backend regressions without a sweep.
func benchSplits(b *testing.B, backend Backend, n, r int) (*FreqHash, [][]bipart.Bipartition) {
	b.Helper()
	trees, ts := randomCollection(42, n, r)
	h, err := Build(collection.FromTrees(trees), ts, BuildOptions{
		RequireComplete: true,
		Backend:         backend,
	})
	if err != nil {
		b.Fatal(err)
	}
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	splits := make([][]bipart.Bipartition, 0, len(trees))
	for _, t := range trees {
		bs, err := ex.Extract(t)
		if err != nil {
			b.Fatal(err)
		}
		splits = append(splits, bs)
	}
	return h, splits
}

func benchmarkProber(b *testing.B, backend Backend, n int) {
	h, splits := benchSplits(b, backend, n, 200)
	p := h.NewProber()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := splits[i%len(splits)]
		if _, err := p.AverageRFOfSplits(bs, Plain); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProberOA48(b *testing.B)   { benchmarkProber(b, BackendOpenAddressing, 48) }
func BenchmarkProberMap48(b *testing.B)  { benchmarkProber(b, BackendMap, 48) }
func BenchmarkProberOA500(b *testing.B)  { benchmarkProber(b, BackendOpenAddressing, 500) }
func BenchmarkProberMap500(b *testing.B) { benchmarkProber(b, BackendMap, 500) }
