package core

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bipart"
	"repro/internal/bitset"
	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/taxa"
)

// bipartFromWords builds a canonical bipartition directly from mask words
// — the raw-material constructor of the fingerprint tests and fuzzer.
func bipartFromWords(words []uint64, width int) (bipart.Bipartition, error) {
	m, err := bitset.FromWords(words, width)
	if err != nil {
		return bipart.Bipartition{}, err
	}
	return bipart.FromMask(m, 0), nil
}

// extractSplits extracts a tree's canonical bipartition set for
// fingerprint tests.
func extractSplits(t *testing.T, ts *taxa.Set, nw string) []bipart.Bipartition {
	t.Helper()
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	bs, err := ex.Extract(newick.MustParse(nw))
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

// TestFingerprintSerializationInvariance: the same unrooted topology
// written with rotated children, reordered subtrees, and a different
// rooting must fingerprint identically — the property that makes the
// cache recognize re-parsed replicates.
func TestFingerprintSerializationInvariance(t *testing.T) {
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	forms := []string{
		"((A,B),((C,D),(E,F)));",
		"(((F,E),(D,C)),(B,A));",
		"((C,D),((A,B),(E,F)));",
		"(A,(B,((C,D),(E,F))));",
	}
	want := TopologyFingerprint(extractSplits(t, ts, forms[0]))
	for _, f := range forms[1:] {
		if got := TopologyFingerprint(extractSplits(t, ts, f)); got != want {
			t.Errorf("fingerprint of %q = %+v, want %+v (same topology)", f, got, want)
		}
	}
	// A genuinely different topology must not collide.
	other := TopologyFingerprint(extractSplits(t, ts, "((A,C),((B,D),(E,F)));"))
	if other == want {
		t.Errorf("distinct topologies share fingerprint %+v", want)
	}
}

// TestFingerprintRelabelDiffers: relabeled-but-isomorphic trees have the
// same shape but different bipartition sets, hence different RF distances
// — the fingerprint must keep them apart or the cache would alias them.
func TestFingerprintRelabelDiffers(t *testing.T) {
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	a := TopologyFingerprint(extractSplits(t, ts, "((A,B),((C,D),(E,F)));"))
	b := TopologyFingerprint(extractSplits(t, ts, "((A,C),((B,D),(E,F)));"))
	if a == b {
		t.Fatalf("relabeled-isomorphic trees share fingerprint %+v", a)
	}
}

// TestFingerprintOrderInvariance: shuffling the extracted slice must not
// change the key (extraction order is a serialization accident).
func TestFingerprintOrderInvariance(t *testing.T) {
	trees, ts := randomCollection(11, 100, 8)
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	rng := rand.New(rand.NewSource(99))
	for i, tr := range trees {
		bs, err := ex.Extract(tr)
		if err != nil {
			t.Fatal(err)
		}
		want := TopologyFingerprint(bs)
		for trial := 0; trial < 4; trial++ {
			rng.Shuffle(len(bs), func(a, b int) { bs[a], bs[b] = bs[b], bs[a] })
			if got := TopologyFingerprint(bs); got != want {
				t.Fatalf("tree %d: shuffled fingerprint %+v != %+v", i, got, want)
			}
		}
	}
}

// TestFingerprinterMatchesTopologyFingerprint: the prober's scratch-reusing
// fingerprinter (counting-sort path) must agree exactly with the one-shot
// entry point and with the comparison-sort fold, at sizes covering the
// 64-bucket, 256-bucket, and beyond-fpRadixMax sort paths — and reused
// scratch must not leak state between sets of different sizes.
func TestFingerprinterMatchesTopologyFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var f fingerprinter
	for _, n := range []int{0, 1, 2, 17, 97, 128, 129, 500, 2048, 2049, 3000} {
		hs := make([]uint64, n)
		bs := make([]bipart.Bipartition, n)
		for i := range bs {
			w := rng.Uint64()
			m, err := bipartFromWords([]uint64{w}, 64)
			if err != nil {
				t.Fatal(err)
			}
			bs[i] = m
			hs[i] = m.Hash()
		}
		want := foldTopoKey(slices.Clone(hs))
		if got := f.key(bs); got != want {
			t.Fatalf("n=%d: fingerprinter.key = %+v, want foldTopoKey = %+v", n, got, want)
		}
		if got := TopologyFingerprint(bs); got != want {
			t.Fatalf("n=%d: TopologyFingerprint = %+v, want %+v", n, got, want)
		}
	}
}

// TestFingerprintHashMatchesTable: Bipartition.Hash must be exactly the
// open-addressing table's hashing rule, or LookupHashed would probe the
// wrong slot chain and silently miss present keys.
func TestFingerprintHashMatchesTable(t *testing.T) {
	for _, n := range []int{48, 100, 200} {
		trees, ts := randomCollection(int64(n), n, 5)
		h, err := Build(collection.FromTrees(trees), ts, BuildOptions{
			RequireComplete: true,
			Backend:         BackendOpenAddressing,
		})
		if err != nil {
			t.Fatal(err)
		}
		ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
		for _, tr := range trees {
			bs, err := ex.Extract(tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range bs {
				if b.Hash() == 0 {
					t.Fatal("zero bipartition hash (0 marks empty table slots)")
				}
				e, ok := h.oa.LookupHashed(b.Hash(), b.Words())
				if !ok || e.Freq == 0 {
					t.Fatalf("n=%d: LookupHashed missed a built bipartition", n)
				}
			}
		}
	}
}

func BenchmarkTopologyFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 97, 256} {
		bs := make([]bipart.Bipartition, n)
		for i := range bs {
			m, err := bipartFromWords([]uint64{rng.Uint64()}, 64)
			if err != nil {
				b.Fatal(err)
			}
			bs[i] = m
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var f fingerprinter
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.key(bs)
			}
		})
	}
}

// BenchmarkProberCacheCycle is the replicate workload at benchmark scale:
// a query stream cycling through d distinct topologies against a table of
// random trees, cached versus uncached — the in-package view of the
// BFHRF-CACHED/BFHRF-NOCACHE perf pair.
func BenchmarkProberCacheCycle(b *testing.B) {
	trees, ts := randomCollection(7, 100, 2000)
	h, err := Build(collection.FromTrees(trees), ts, BuildOptions{
		RequireComplete: true,
		Backend:         BackendOpenAddressing,
	})
	if err != nil {
		b.Fatal(err)
	}
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	const distinct = 256
	sets := make([][]bipart.Bipartition, distinct)
	for i := range sets {
		bs, err := ex.Extract(trees[i])
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = bs
	}
	for _, mode := range []string{"cached", "uncached"} {
		b.Run(mode, func(b *testing.B) {
			p := h.NewProber()
			if mode == "cached" {
				p.SetCache(NewQueryCache(0, 0))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.AverageRFOfSplits(sets[i%distinct], Plain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
