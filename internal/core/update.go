package core

import (
	"fmt"

	"repro/internal/bipart"
	"repro/internal/tree"
)

// Incremental maintenance of the frequency hash. Because the BFH stores
// exact per-bipartition frequencies, adding or removing a reference tree
// is a handful of counter updates — no rebuild, no other engine supports
// this. Useful for growing collections (e.g. posterior samples arriving
// from an MCMC run) and for leave-one-out analyses. Both backends support
// it: the map deletes exhausted keys, and both table backends keep them
// as keyed tombstones (probe chains stay intact; a later AddTree revives
// the slot).

// AddTree folds one more reference tree into the hash (r increases by 1).
func (h *FreqHash) AddTree(t *tree.Tree, filter bipart.Filter, requireComplete bool) error {
	bs, err := h.extractFor(t, filter, requireComplete)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, b := range bs {
		length := 0.0
		if b.HasLength {
			length = b.Length
		} else {
			h.weighted = false
		}
		switch {
		case h.oa != nil:
			h.oa.Add(b.Words(), uint32(b.Size()), length)
		case h.st != nil:
			h.st.Add(b.Words(), uint32(b.Size()), length)
		default:
			k := h.keyOf(b)
			e := h.m[k]
			e.Freq++
			e.Size = uint32(b.Size())
			e.LengthSum += length
			h.m[k] = e
		}
		h.sum++
		h.lenSum += length
	}
	h.numTrees++
	h.icTable, h.icSum = nil, 0
	mRefTrees.Inc()
	mBipartitionsHashed.Add(uint64(len(bs)))
	mUniqueBipartitions.Set(float64(h.UniqueBipartitions()))
	return nil
}

// RemoveTree subtracts a previously added reference tree (r decreases by
// 1). It is the caller's responsibility that the tree was in fact part of
// the collection; removing a tree that was never added corrupts the
// frequencies, and the method returns an error when that is detectable
// (a bipartition frequency would go negative).
func (h *FreqHash) RemoveTree(t *tree.Tree, filter bipart.Filter, requireComplete bool) error {
	bs, err := h.extractFor(t, filter, requireComplete)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.numTrees == 0 {
		return fmt.Errorf("core: RemoveTree on an empty hash")
	}
	// Validate first so the hash is never left half-updated.
	for _, b := range bs {
		if h.entryOf(b).Freq == 0 {
			return fmt.Errorf("core: RemoveTree: bipartition %s was never in the hash", b)
		}
	}
	for _, b := range bs {
		length := 0.0
		if b.HasLength {
			length = b.Length
		}
		switch {
		case h.oa != nil:
			h.oa.Dec(b.Words(), length)
		case h.st != nil:
			h.st.Dec(b.Words(), length)
		default:
			k := h.keyOf(b)
			e := h.m[k]
			e.Freq--
			e.LengthSum -= length
			if e.Freq == 0 {
				delete(h.m, k)
			} else {
				h.m[k] = e
			}
		}
		h.lenSum -= length
		h.sum--
	}
	h.numTrees--
	h.icTable, h.icSum = nil, 0
	return nil
}

func (h *FreqHash) extractFor(t *tree.Tree, filter bipart.Filter, requireComplete bool) ([]bipart.Bipartition, error) {
	ex := &bipart.Extractor{
		Taxa:            h.taxa,
		RequireComplete: requireComplete,
		Filter:          filter,
	}
	return ex.Extract(t)
}
