package core

import (
	"testing"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestGreedyRefinesMajority(t *testing.T) {
	// Collections with plurality-but-not-majority splits: greedy resolves
	// more than majority rule and never contradicts it.
	trees, ts := randomCollection(100, 12, 7)
	h := buildHash(t, trees, ts)
	maj, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := h.GreedyConsensus(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.NumInternalEdges() < maj.NumInternalEdges() {
		t.Errorf("greedy (%d edges) must refine majority (%d edges)",
			greedy.NumInternalEdges(), maj.NumInternalEdges())
	}
	// Every majority split must appear in the greedy tree: their RF
	// restricted to majority splits is 0, i.e. the greedy tree contains
	// each split with support > 0.5.
	ex := bipart.NewExtractor(ts)
	gset := bipart.SetOf(ex.MustExtract(greedy))
	mset := ex.MustExtract(maj)
	for _, m := range mset {
		if !gset.Contains(m) {
			t.Errorf("greedy tree lost majority split %s", m)
		}
	}
	if err := greedy.Validate(); err != nil {
		t.Fatalf("greedy consensus invalid: %v", err)
	}
}

func TestGreedyFullyResolvedOnConcordant(t *testing.T) {
	ts := taxa.Generate(16)
	msc := simphy.NewMSCCollection(ts, 8, 1.0)
	simphy.ScaleMeanInternal(msc.Species, 2.5)
	trees := make([]*tree.Tree, 50)
	for i := range trees {
		trees[i] = msc.Make(i)
	}
	h, err := BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := h.GreedyConsensus(0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Fully resolved unrooted binary tree: n−3 internal edges.
	if got := greedy.NumInternalEdges(); got != 16-3 {
		t.Errorf("greedy on concordant data: %d internal edges, want %d", got, 13)
	}
	// And close to the true species tree.
	sp := msc.Species.Clone()
	sp.Deroot()
	if d := day.MustRF(greedy, sp); d > 4 {
		t.Errorf("greedy consensus RF to species tree = %d", d)
	}
}

func TestGreedyInvalidSupport(t *testing.T) {
	trees, ts := randomCollection(4, 8, 4)
	h := buildHash(t, trees, ts)
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := h.GreedyConsensus(bad); err == nil {
			t.Errorf("minSupport %v should fail", bad)
		}
	}
}

func TestGreedyAcceptedSplitsAreCompatible(t *testing.T) {
	trees, ts := randomCollection(200, 10, 9)
	h := buildHash(t, trees, ts)
	greedy, err := h.GreedyConsensus(0.01)
	if err != nil {
		t.Fatal(err)
	}
	ex := bipart.NewExtractor(ts)
	splits := ex.MustExtract(greedy)
	if !bipart.MutuallyCompatible(splits) {
		t.Error("greedy tree extracted splits are not mutually compatible (tree builder bug)")
	}
}

func TestCompatiblePredicate(t *testing.T) {
	ts := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	ex := bipart.NewExtractor(ts)
	tr := newick.MustParse("((A,B),((C,D),(E,F)));")
	splits := ex.MustExtract(tr)
	// Splits of one tree are always mutually compatible.
	if !bipart.MutuallyCompatible(splits) {
		t.Error("splits of one tree must be compatible")
	}
	// AB|CDEF vs AC|BDEF conflict.
	other := ex.MustExtract(newick.MustParse("((A,C),((B,D),(E,F)));"))
	ab := splits[0]
	var ac bipart.Bipartition
	found := false
	for _, s := range other {
		if s.SmallSideSize(6) == 2 && !s.Equal(ab) {
			// candidate; check it involves A's pairing with C by conflict
			if !bipart.Compatible(ab, s) {
				ac = s
				found = true
			}
		}
	}
	if !found {
		t.Fatal("expected a conflicting split between the two quartet groupings")
	}
	_ = ac
}
