package core

import (
	"fmt"
	"sort"

	"repro/internal/bipart"
	"repro/internal/bitset"
	"repro/internal/tree"
)

// GreedyConsensus extends the majority-rule consensus: bipartitions are
// considered in decreasing support order and each is added if it is
// compatible with everything accepted so far. The result refines the
// majority-rule tree (majority splits are pairwise compatible and come
// first) and is typically fully resolved for concordant collections.
// minSupport (in (0, 1]) prunes the candidate list; a small value such as
// 0.05 considers nearly everything.
func (h *FreqHash) GreedyConsensus(minSupport float64) (*tree.Tree, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("core: greedy consensus minSupport %v out of (0, 1]", minSupport)
	}
	minFreq := int(minSupport * float64(h.numTrees))
	if minFreq < 1 {
		minFreq = 1
	}
	entries, err := h.Entries(minFreq)
	if err != nil {
		return nil, err
	}
	// Entries is sorted by descending frequency with deterministic
	// tie-breaks; accept greedily.
	var accepted []bipart.Bipartition
	for _, e := range entries {
		ok := true
		for _, a := range accepted {
			if !bipart.Compatible(a, e.Bipartition) {
				ok = false
				break
			}
		}
		if ok {
			b := e.Bipartition
			if e.MeanLength > 0 {
				b.Length, b.HasLength = e.MeanLength, true
			}
			accepted = append(accepted, b)
		}
	}
	t, err := h.treeFromSplits(accepted)
	if err != nil {
		return nil, fmt.Errorf("core: greedy consensus construction: %w", err)
	}
	return t, nil
}

// treeFromSplits builds a tree realizing a mutually compatible set of
// canonical splits (their 1-sides form a laminar family, since every
// canonical mask excludes the anchor taxon). Splits carrying lengths
// annotate the corresponding edges.
func (h *FreqHash) treeFromSplits(splits []bipart.Bipartition) (*tree.Tree, error) {
	n := h.taxa.Len()
	if n < 2 {
		return nil, fmt.Errorf("core: need at least 2 taxa")
	}
	sorted := make([]bipart.Bipartition, len(splits))
	copy(sorted, splits)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := sorted[i].Size(), sorted[j].Size()
		if si != sj {
			return si > sj
		}
		return sorted[i].Key() < sorted[j].Key()
	})

	type cnode struct {
		node *tree.Node
		mask *bitset.Bits
	}
	root := &cnode{node: &tree.Node{}, mask: bitset.New(n)}
	root.mask.ComplementInPlace()
	children := map[*tree.Node][]*cnode{}
	for i := 0; i < n; i++ {
		m := bitset.New(n)
		m.Set(i)
		leaf := &cnode{node: &tree.Node{Name: h.taxa.Name(i)}, mask: m}
		root.node.AddChild(leaf.node)
		children[root.node] = append(children[root.node], leaf)
	}

	for _, sp := range sorted {
		c := sp.Mask()
		// Descend to the smallest existing cluster strictly containing c.
		p := root
		for {
			var next *cnode
			for _, ch := range children[p.node] {
				if c.IsSubsetOf(ch.mask) && !c.Equal(ch.mask) {
					next = ch
					break
				}
			}
			if next == nil {
				break
			}
			p = next
		}
		var inside, outside []*cnode
		for _, ch := range children[p.node] {
			if ch.mask.IsSubsetOf(c) {
				inside = append(inside, ch)
			} else {
				outside = append(outside, ch)
			}
		}
		if len(inside) < 2 {
			continue
		}
		u := &cnode{node: &tree.Node{}, mask: c.Clone()}
		if sp.HasLength {
			u.node.Length, u.node.HasLength = sp.Length, true
		}
		for _, ch := range inside {
			u.node.AddChild(ch.node)
		}
		children[u.node] = inside
		newKids := make([]*tree.Node, 0, len(outside)+1)
		for _, ch := range outside {
			newKids = append(newKids, ch.node)
		}
		newKids = append(newKids, u.node)
		p.node.Children = newKids
		u.node.Parent = p.node
		children[p.node] = append(outside, u)
	}
	t := tree.New(root.node)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
