package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/obs"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// BuildOptions configure the BFH construction phase (the first loop of
// Algorithm 2).
type BuildOptions struct {
	// Workers is the number of goroutines extracting bipartitions.
	// 0 selects GOMAXPROCS.
	Workers int
	// Filter optionally drops bipartitions before they enter the hash —
	// the paper's pre-processing hook ("can still be pre-processed
	// according to generalized or variant RF algorithms").
	Filter bipart.Filter
	// RequireComplete rejects reference trees that do not cover the whole
	// catalogue. On by default via Build; variable-taxa pipelines restrict
	// trees first and keep this on for the reduced catalogue.
	RequireComplete bool
	// CompressKeys stores losslessly compressed bipartition keys (§IX),
	// trading a little CPU per lookup for a smaller hash.
	CompressKeys bool
}

func (o BuildOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Build streams the reference collection once and constructs the
// bipartition frequency hash. Trees are fanned out to Workers goroutines
// that extract bipartitions into worker-local maps, merged at the end —
// the "embarrassingly parallel at the tree level" structure of the paper
// with no lock contention on the hot path.
func Build(r collection.Source, ts *taxa.Set, opts BuildOptions) (*FreqHash, error) {
	if ts == nil {
		return nil, fmt.Errorf("core: taxon catalogue is required")
	}
	_, span := obs.StartSpan(nil, SpanBuild)
	defer span.End()
	h := &FreqHash{
		taxa:       ts,
		m:          make(map[string]entry),
		weighted:   true,
		compressed: opts.CompressKeys,
	}
	// Parallel-parse fast path: when the source hands out raw statements,
	// workers parse as well as extract.
	if rs, ok := rawCapable(r); ok {
		if err := buildRaw(rs, ts, opts, h); err != nil {
			return nil, err
		}
		if h.numTrees == 0 {
			return nil, fmt.Errorf("core: reference collection is empty")
		}
		return h, nil
	}
	if err := r.Reset(); err != nil {
		return nil, err
	}

	workers := opts.workers()
	jobs := make(chan *tree.Tree, workers*2)
	locals := make([]map[string]entry, workers)
	weightedFlags := make([]bool, workers)
	errs := make([]error, workers)
	treeCounts := make([]int, workers)
	bipCounts := make([]int, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := &bipart.Extractor{
				Taxa:            ts,
				RequireComplete: opts.RequireComplete,
				Filter:          opts.Filter,
			}
			local := make(map[string]entry)
			weighted := true
			for t := range jobs {
				bs, err := ex.Extract(t)
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					continue
				}
				treeCounts[w]++
				bipCounts[w] += len(bs)
				for _, b := range bs {
					k := h.keyOf(b)
					e := local[k]
					e.Freq++
					e.Size = uint32(b.Size())
					if b.HasLength {
						e.LengthSum += b.Length
					} else {
						weighted = false
					}
					local[k] = e
				}
			}
			locals[w] = local
			weightedFlags[w] = weighted
		}(w)
	}

	var feedErr error
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		jobs <- t
	}
	close(jobs)
	wg.Wait()

	if feedErr != nil {
		return nil, fmt.Errorf("core: reading reference collection: %w", feedErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: reference tree: %w", err)
		}
	}
	bips := 0
	for w := 0; w < workers; w++ {
		h.merge(locals[w])
		h.numTrees += treeCounts[w]
		bips += bipCounts[w]
		if !weightedFlags[w] {
			h.weighted = false
		}
	}
	if h.numTrees == 0 {
		return nil, fmt.Errorf("core: reference collection is empty")
	}
	recordBuild(h.numTrees, bips, len(h.m))
	return h, nil
}

// BuildDefault builds the hash with complete-coverage checking and
// GOMAXPROCS workers, the common case.
func BuildDefault(r collection.Source, ts *taxa.Set) (*FreqHash, error) {
	return Build(r, ts, BuildOptions{RequireComplete: true})
}
