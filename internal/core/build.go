package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/bfhtable"
	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/obs"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// BuildOptions configure the BFH construction phase (the first loop of
// Algorithm 2).
type BuildOptions struct {
	// Workers is the number of goroutines extracting bipartitions.
	// 0 selects GOMAXPROCS. The effective count is clamped to what the
	// collection size can keep busy when the source knows its size
	// (EffectiveWorkers).
	Workers int
	// Filter optionally drops bipartitions before they enter the hash —
	// the paper's pre-processing hook ("can still be pre-processed
	// according to generalized or variant RF algorithms").
	Filter bipart.Filter
	// RequireComplete rejects reference trees that do not cover the whole
	// catalogue. On by default via Build; variable-taxa pipelines restrict
	// trees first and keep this on for the reduced catalogue.
	RequireComplete bool
	// CompressKeys stores losslessly compressed bipartition keys (§IX),
	// trading a little CPU per lookup for a smaller hash. Map backend only
	// (the succinct backend compresses keys natively).
	CompressKeys bool
	// Backend selects the storage engine. BackendAuto (the zero value)
	// picks the open-addressing table, the succinct table once raw keys
	// reach autoSuccinctKeyBytes, or the map when CompressKeys is set.
	Backend Backend
	// HashShards overrides the table backends' shard count (default: one
	// shard per worker; rounded to a power of two in [1, 256]). Ignored by
	// the map backend.
	HashShards int
}

func (o BuildOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Build streams the reference collection once and constructs the
// bipartition frequency hash. Trees are fanned out to Workers goroutines
// that extract bipartitions into worker-local structures, merged at the
// end — the "embarrassingly parallel at the tree level" structure of the
// paper with no lock contention on the hot path. With the default
// open-addressing backend the merge itself is parallel across hash shards.
func Build(r collection.Source, ts *taxa.Set, opts BuildOptions) (*FreqHash, error) {
	if ts == nil {
		return nil, fmt.Errorf("core: taxon catalogue is required")
	}
	if (opts.Backend == BackendOpenAddressing || opts.Backend == BackendSuccinct) && opts.CompressKeys {
		return nil, fmt.Errorf("core: compressed keys require the map backend")
	}
	_, span := obs.StartSpan(nil, SpanBuild)
	defer span.End()
	h := &FreqHash{
		taxa:       ts,
		weighted:   true,
		compressed: opts.CompressKeys,
	}
	switch opts.resolveBackendFor(ts.Len()) {
	case BackendOpenAddressing:
		// Placeholder so h.oa != nil routes the build; replaced by the
		// merged worker tables in finishBuild.
		h.oa = bfhtable.New(wordsPerKey(ts), 1)
	case BackendSuccinct:
		h.st = bfhtable.NewSuccinct(ts.Len(), 1)
	default:
		h.m = make(map[string]entry)
	}
	// Parallel-parse fast path: when the source hands out raw statements,
	// workers parse as well as extract.
	if rs, ok := rawCapable(r); ok {
		if err := buildRaw(rs, ts, opts, h); err != nil {
			return nil, err
		}
		if h.numTrees == 0 {
			return nil, fmt.Errorf("core: reference collection is empty")
		}
		annotateBuildSpan(span, h)
		return h, nil
	}
	if err := r.Reset(); err != nil {
		return nil, err
	}

	workers := EffectiveWorkers(opts.workers(), sourceLen(r))
	shards := opts.shardCount(workers)
	jobs := make(chan *tree.Tree, workers*2)
	accums := make([]*buildAccum, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := &bipart.Extractor{
				Taxa:            ts,
				RequireComplete: opts.RequireComplete,
				Filter:          opts.Filter,
				ReuseMasks:      true,
			}
			acc := newBuildAccum(h, wordsPerKey(ts), shards)
			for t := range jobs {
				bs, err := ex.Extract(t)
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					continue
				}
				acc.add(h, bs)
			}
			accums[w] = acc
		}(w)
	}

	var feedErr error
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		jobs <- t
	}
	close(jobs)
	wg.Wait()

	if feedErr != nil {
		return nil, fmt.Errorf("core: reading reference collection: %w", feedErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: reference tree: %w", err)
		}
	}
	bips := h.finishBuild(accums)
	if h.numTrees == 0 {
		return nil, fmt.Errorf("core: reference collection is empty")
	}
	recordBuild(h, bips)
	annotateBuildSpan(span, h)
	return h, nil
}

// wordsPerKey is the fixed word width of a canonical mask over ts.
func wordsPerKey(ts *taxa.Set) int { return (ts.Len() + 63) / 64 }

// BuildDefault builds the hash with complete-coverage checking and
// GOMAXPROCS workers, the common case.
func BuildDefault(r collection.Source, ts *taxa.Set) (*FreqHash, error) {
	return Build(r, ts, BuildOptions{RequireComplete: true})
}
