package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
)

// TestGreedyConsensusIndependentOfCompression: the greedy consensus (which
// breaks support ties by entry order) must produce the same tree whether
// the hash stores raw or compressed keys.
func TestGreedyConsensusIndependentOfCompression(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		trees, ts := randomCollection(500+trial, 11, 7)
		src := collection.FromTrees(trees)
		plain, err := Build(src, ts, BuildOptions{RequireComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		gp, err := plain.GreedyConsensus(0.01)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := comp.GreedyConsensus(0.01)
		if err != nil {
			t.Fatal(err)
		}
		sp := newick.String(gp, newick.WriteOptions{})
		sc := newick.String(gc, newick.WriteOptions{})
		if sp != sc {
			t.Errorf("trial %d: greedy consensus differs under compression:\n%s\n%s", trial, sp, sc)
		}
	}
}

// TestEntriesOrderIndependentOfCompression: Entries must list identical
// bipartitions in identical order for both key schemes.
func TestEntriesOrderIndependentOfCompression(t *testing.T) {
	trees, ts := randomCollection(77, 13, 9)
	src := collection.FromTrees(trees)
	plain, err := Build(src, ts, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := plain.Entries(0)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := comp.Entries(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep) != len(ec) {
		t.Fatalf("entry counts differ: %d vs %d", len(ep), len(ec))
	}
	for i := range ep {
		if ep[i].Bipartition.Key() != ec[i].Bipartition.Key() || ep[i].Frequency != ec[i].Frequency {
			t.Errorf("entry %d differs: %s/%d vs %s/%d",
				i, ep[i].Bipartition, ep[i].Frequency, ec[i].Bipartition, ec[i].Frequency)
		}
	}
}
