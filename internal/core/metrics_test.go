package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/tree"
)

// The core metrics live in the shared obs.Default registry, so tests
// assert deltas rather than absolute values.

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildAndQueryMetrics(t *testing.T) {
	trees := []*tree.Tree{
		mustParse(t, "((A,B),(C,D));"),
		mustParse(t, "((A,C),(B,D));"),
		mustParse(t, "((A,B),(C,D));"),
	}
	refsBefore := mRefTrees.Value()
	bipsBefore := mBipartitionsHashed.Value()
	queriesBefore := mQueries.Value()
	lookupsBefore := mHashLookups.Value()
	missesBefore := mHashMisses.Value()
	buildsBefore := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanBuild)).Count()
	queriesSpanBefore := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanQuery)).Count()

	h := buildHash(t, trees, abcd)

	if got := mRefTrees.Value() - refsBefore; got != 3 {
		t.Errorf("ref trees delta = %d, want 3", got)
	}
	// Each 4-taxon binary tree has one non-trivial bipartition.
	if got := mBipartitionsHashed.Value() - bipsBefore; got != 3 {
		t.Errorf("bipartitions hashed delta = %d, want 3", got)
	}
	if got := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanBuild)).Count() - buildsBefore; got != 1 {
		t.Errorf("build span count delta = %d, want 1", got)
	}

	// One query sharing AB|CD (a hit) and one all-miss topology would need
	// >4 taxa; on 4 taxa both topologies are in the hash, so query with one
	// of them and verify lookup accounting.
	queries := []*tree.Tree{mustParse(t, "((A,B),(C,D));"), mustParse(t, "((A,D),(B,C));")}
	if _, err := h.AverageRF(collection.FromTrees(queries), QueryOptions{RequireComplete: true}); err != nil {
		t.Fatal(err)
	}
	if got := mQueries.Value() - queriesBefore; got != 2 {
		t.Errorf("queries delta = %d, want 2", got)
	}
	if got := mHashLookups.Value() - lookupsBefore; got != 2 {
		t.Errorf("lookups delta = %d, want 2", got)
	}
	// AD|BC never appears in the reference trees: exactly one miss.
	if got := mHashMisses.Value() - missesBefore; got != 1 {
		t.Errorf("misses delta = %d, want 1", got)
	}
	if got := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanQuery)).Count() - queriesSpanBefore; got != 1 {
		t.Errorf("query span count delta = %d, want 1", got)
	}
}

func TestAddTreeMetrics(t *testing.T) {
	trees := []*tree.Tree{mustParse(t, "((A,B),(C,D));")}
	h := buildHash(t, trees, abcd)
	refsBefore := mRefTrees.Value()
	bipsBefore := mBipartitionsHashed.Value()
	if err := h.AddTree(mustParse(t, "((A,C),(B,D));"), nil, true); err != nil {
		t.Fatal(err)
	}
	if got := mRefTrees.Value() - refsBefore; got != 1 {
		t.Errorf("ref trees delta = %d, want 1", got)
	}
	if got := mBipartitionsHashed.Value() - bipsBefore; got != 1 {
		t.Errorf("bipartitions delta = %d, want 1", got)
	}
	if got := mUniqueBipartitions.Value(); got != 2 {
		t.Errorf("unique gauge = %g, want 2", got)
	}
}
