package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/tree"
)

// The core metrics live in the shared obs.Default registry, so tests
// assert deltas rather than absolute values.

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildAndQueryMetrics(t *testing.T) {
	trees := []*tree.Tree{
		mustParse(t, "((A,B),(C,D));"),
		mustParse(t, "((A,C),(B,D));"),
		mustParse(t, "((A,B),(C,D));"),
	}
	refsBefore := mRefTrees.Value()
	bipsBefore := mBipartitionsHashed.Value()
	queriesBefore := mQueries.Value()
	lookupsBefore := mHashLookups.Value()
	missesBefore := mHashMisses.Value()
	buildsBefore := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanBuild)).Count()
	queriesSpanBefore := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanQuery)).Count()

	h := buildHash(t, trees, abcd)

	if got := mRefTrees.Value() - refsBefore; got != 3 {
		t.Errorf("ref trees delta = %d, want 3", got)
	}
	// Each 4-taxon binary tree has one non-trivial bipartition.
	if got := mBipartitionsHashed.Value() - bipsBefore; got != 3 {
		t.Errorf("bipartitions hashed delta = %d, want 3", got)
	}
	if got := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanBuild)).Count() - buildsBefore; got != 1 {
		t.Errorf("build span count delta = %d, want 1", got)
	}

	// One query sharing AB|CD (a hit) and one all-miss topology would need
	// >4 taxa; on 4 taxa both topologies are in the hash, so query with one
	// of them and verify lookup accounting.
	queries := []*tree.Tree{mustParse(t, "((A,B),(C,D));"), mustParse(t, "((A,D),(B,C));")}
	if _, err := h.AverageRF(collection.FromTrees(queries), QueryOptions{RequireComplete: true}); err != nil {
		t.Fatal(err)
	}
	if got := mQueries.Value() - queriesBefore; got != 2 {
		t.Errorf("queries delta = %d, want 2", got)
	}
	if got := mHashLookups.Value() - lookupsBefore; got != 2 {
		t.Errorf("lookups delta = %d, want 2", got)
	}
	// AD|BC never appears in the reference trees: exactly one miss.
	if got := mHashMisses.Value() - missesBefore; got != 1 {
		t.Errorf("misses delta = %d, want 1", got)
	}
	if got := obs.Histogram(obs.StageMetric, "", nil, obs.L("stage", SpanQuery)).Count() - queriesSpanBefore; got != 1 {
		t.Errorf("query span count delta = %d, want 1", got)
	}
}

// TestHashTableMetrics checks the open-addressing health metrics sampled
// once per build: the probe-length histogram grows by one observation per
// occupied slot and the load-factor gauge lands in (0, 0.75].
func TestHashTableMetrics(t *testing.T) {
	trees, ts := randomCollection(41, 24, 50)
	probesBefore := mHashProbeLength.Count()

	h, err := Build(collection.FromTrees(trees), ts, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendOpenAddressing {
		t.Fatalf("default backend = %v", h.Backend())
	}
	// Every unique bipartition occupies a slot; each contributes one
	// probe-length observation.
	if got := mHashProbeLength.Count() - probesBefore; got != uint64(h.UniqueBipartitions()) {
		t.Errorf("probe-length observations delta = %d, want %d", got, h.UniqueBipartitions())
	}
	if lf := mHashLoadFactor.Value(); lf <= 0 || lf > 0.75 {
		t.Errorf("load factor gauge = %g, want in (0, 0.75]", lf)
	}

	// A map-backend build resets the gauge and observes no probes.
	probesBefore = mHashProbeLength.Count()
	if _, err := Build(collection.FromTrees(trees), ts, BuildOptions{RequireComplete: true, Backend: BackendMap}); err != nil {
		t.Fatal(err)
	}
	if got := mHashProbeLength.Count() - probesBefore; got != 0 {
		t.Errorf("map build observed %d probe lengths, want 0", got)
	}
	if lf := mHashLoadFactor.Value(); lf != 0 {
		t.Errorf("load factor gauge after map build = %g, want 0", lf)
	}
}

func TestAddTreeMetrics(t *testing.T) {
	trees := []*tree.Tree{mustParse(t, "((A,B),(C,D));")}
	h := buildHash(t, trees, abcd)
	refsBefore := mRefTrees.Value()
	bipsBefore := mBipartitionsHashed.Value()
	if err := h.AddTree(mustParse(t, "((A,C),(B,D));"), nil, true); err != nil {
		t.Fatal(err)
	}
	if got := mRefTrees.Value() - refsBefore; got != 1 {
		t.Errorf("ref trees delta = %d, want 1", got)
	}
	if got := mBipartitionsHashed.Value() - bipsBefore; got != 1 {
		t.Errorf("bipartitions delta = %d, want 1", got)
	}
	if got := mUniqueBipartitions.Value(); got != 2 {
		t.Errorf("unique gauge = %g, want 2", got)
	}
}
