package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/taxa"
)

// This file implements the parallel-parse fast path: when the reference or
// query source can hand out raw Newick statements (collection.RawSource),
// workers parse *and* extract, so tree construction — the dominant cost of
// file-backed runs — scales with the worker count. This is the full
// "parallelized the reading of trees, generating bipartitions, and then
// computing RF comparisons at the tree level" decomposition the paper
// describes for DSMP and BFHRF (§V).

// rawCapable reports whether src supports the raw path right now
// (RawSource implemented and the format splittable).
func rawCapable(src collection.Source) (collection.RawSource, bool) {
	rs, ok := src.(collection.RawSource)
	if !ok {
		return nil, false
	}
	if err := rs.Reset(); err != nil {
		return nil, false
	}
	stmt, err := rs.NextRaw()
	if err == collection.ErrRawUnsupported {
		return nil, false
	}
	if err != nil && err != io.EOF {
		return nil, false
	}
	_ = stmt
	if err := rs.Reset(); err != nil {
		return nil, false
	}
	return rs, true
}

// buildRaw is Build's worker body over raw statements.
func buildRaw(rs collection.RawSource, ts *taxa.Set, opts BuildOptions, h *FreqHash) error {
	workers := EffectiveWorkers(opts.workers(), sourceLen(rs))
	shards := opts.shardCount(workers)
	jobs := make(chan string, workers*4)
	accums := make([]*buildAccum, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := &bipart.Extractor{
				Taxa:            ts,
				RequireComplete: opts.RequireComplete,
				Filter:          opts.Filter,
				ReuseMasks:      true,
			}
			acc := newBuildAccum(h, wordsPerKey(ts), shards)
			for stmt := range jobs {
				t, err := newick.Parse(stmt)
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					continue
				}
				bs, err := ex.Extract(t)
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					continue
				}
				acc.add(h, bs)
			}
			accums[w] = acc
		}(w)
	}

	var feedErr error
	for {
		stmt, err := rs.NextRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		jobs <- stmt
	}
	close(jobs)
	wg.Wait()

	if feedErr != nil {
		return fmt.Errorf("core: reading reference collection: %w", feedErr)
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("core: reference tree: %w", err)
		}
	}
	bips := h.finishBuild(accums)
	recordBuild(h, bips)
	return nil
}

// averageRFRaw is AverageRF's worker body over raw statements.
func (h *FreqHash) averageRFRaw(rs collection.RawSource, opts QueryOptions) ([]Result, error) {
	workers := EffectiveWorkers(opts.workers(), sourceLen(rs))
	type job struct {
		idx  int
		stmt string
	}
	jobs := make(chan job, workers*4)
	outs := make([][]Result, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := &bipart.Extractor{
				Taxa:            h.taxa,
				RequireComplete: opts.RequireComplete,
				Filter:          opts.Filter,
				ReuseMasks:      true,
			}
			p := h.proberFor(opts)
			for j := range jobs {
				t, err := newick.Parse(j.stmt)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("core: query tree %d: %w", j.idx, err)
					}
					continue
				}
				avg, err := h.queryOne(t, ex, p, opts.Variant)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("core: query tree %d: %w", j.idx, err)
					}
					continue
				}
				r := Result{Index: j.idx, AvgRF: avg}
				if opts.OnResult != nil {
					opts.OnResult(r)
				}
				outs[w] = append(outs[w], r)
			}
		}(w)
	}

	var dispatched []bool
	canceled := false
	var feedErr error
	for !canceled {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				canceled = true
				continue
			default:
			}
		}
		stmt, err := rs.NextRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		idx := len(dispatched)
		if opts.Skip != nil && opts.Skip(idx) {
			dispatched = append(dispatched, false)
			continue
		}
		dispatched = append(dispatched, true)
		jobs <- job{idx: idx, stmt: stmt}
	}
	close(jobs)
	wg.Wait()

	if feedErr != nil {
		return nil, fmt.Errorf("core: reading query collection: %w", feedErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return collectResults(outs, dispatched, canceled)
}
