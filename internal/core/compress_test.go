package core

import (
	"testing"

	"repro/internal/collection"
)

// TestCompressedHashAgrees checks the §IX key-compression option: the
// compressed hash must produce bit-identical distances and entries while
// storing the same number of (smaller) keys.
func TestCompressedHashAgrees(t *testing.T) {
	trees, ts := randomCollection(91, 40, 60)
	src := collection.FromTrees(trees)

	plain, err := Build(src, ts, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Compressed() || plain.Compressed() {
		t.Fatal("Compressed flag wrong")
	}
	if plain.UniqueBipartitions() != comp.UniqueBipartitions() {
		t.Fatalf("unique counts differ: %d vs %d",
			plain.UniqueBipartitions(), comp.UniqueBipartitions())
	}
	if plain.TotalBipartitions() != comp.TotalBipartitions() {
		t.Fatal("total counts differ")
	}

	rp, err := plain.AverageRF(src, QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := comp.AverageRF(src, QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp {
		if rp[i].AvgRF != rc[i].AvgRF {
			t.Errorf("tree %d: plain %v vs compressed %v", i, rp[i].AvgRF, rc[i].AvgRF)
		}
	}

	// Entries must reconstruct identical bipartitions.
	ep, err := plain.Entries(0)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := comp.Entries(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep) != len(ec) {
		t.Fatalf("entry counts differ: %d vs %d", len(ep), len(ec))
	}
	// Order may differ at equal frequency (keys sort differently); compare
	// as sets of (mask, freq).
	want := map[string]int{}
	for _, e := range ep {
		want[e.Bipartition.Key()] = e.Frequency
	}
	for _, e := range ec {
		if want[e.Bipartition.Key()] != e.Frequency {
			t.Errorf("entry mismatch for %s: %d", e.Bipartition, e.Frequency)
		}
	}
}

// TestCompressedHashSmallerKeys verifies the memory motivation: summed key
// bytes must shrink for concentrated collections over many taxa.
func TestCompressedHashSmallerKeys(t *testing.T) {
	trees, ts := randomCollection(17, 200, 30)
	src := collection.FromTrees(trees)
	// Pin the map backend: the §IX comparison is raw vs compressed keys
	// within the string-keyed engine (the open-addressing backend stores
	// fixed-width words, not strings).
	plain, err := Build(src, ts, BuildOptions{RequireComplete: true, Backend: BackendMap})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	pb, cb := keyBytes(plain), keyBytes(comp)
	if cb >= pb {
		t.Errorf("compressed keys use %d bytes vs plain %d; expected a reduction", cb, pb)
	}
	t.Logf("key bytes: plain=%d compressed=%d (%.1f%%)", pb, cb, 100*float64(cb)/float64(pb))
}

func keyBytes(h *FreqHash) int {
	total := 0
	for _, n := range h.KeySizes() {
		total += n
	}
	return total
}

func TestCompressedConsensus(t *testing.T) {
	trees, ts := randomCollection(23, 12, 9)
	src := collection.FromTrees(trees)
	plain, err := Build(src, ts, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := plain.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := comp.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NumInternalEdges() != cc.NumInternalEdges() {
		t.Errorf("consensus differs under compression: %d vs %d edges",
			cp.NumInternalEdges(), cc.NumInternalEdges())
	}
}
