package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/day"
	"repro/internal/hashrf"
	"repro/internal/newick"
	"repro/internal/seqrf"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

var abcd = taxa.MustNewSet([]string{"A", "B", "C", "D"})

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func buildHash(t *testing.T, trees []*tree.Tree, ts *taxa.Set) *FreqHash {
	t.Helper()
	h, err := BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randomCollection(seed int64, n, r int) ([]*tree.Tree, *taxa.Set) {
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(seed))
	trees := make([]*tree.Tree, r)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	return trees, ts
}

func TestPaperExample(t *testing.T) {
	refs := []*tree.Tree{newick.MustParse("((D,B),(C,A));")}
	h := buildHash(t, refs, abcd)
	if h.NumTrees() != 1 {
		t.Fatalf("r = %d", h.NumTrees())
	}
	if h.UniqueBipartitions() != 1 || h.TotalBipartitions() != 1 {
		t.Fatalf("hash sizes: unique=%d total=%d", h.UniqueBipartitions(), h.TotalBipartitions())
	}
	got, err := h.AverageRFOne(newick.MustParse("((A,B),(C,D));"), QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("avg RF = %v, want 2 (paper Eq. 1)", got)
	}
}

func TestFrequencyCounts(t *testing.T) {
	refs := []*tree.Tree{
		newick.MustParse("((A,B),(C,D));"),
		newick.MustParse("((A,B),(C,D));"),
		newick.MustParse("((A,C),(B,D));"),
	}
	h := buildHash(t, refs, abcd)
	ex := bipart.NewExtractor(abcd)
	ab := ex.MustExtract(newick.MustParse("((A,B),(C,D));"))[0]
	ac := ex.MustExtract(newick.MustParse("((A,C),(B,D));"))[0]
	ad := ex.MustExtract(newick.MustParse("((A,D),(B,C));"))[0]
	if h.Frequency(ab) != 2 {
		t.Errorf("freq(AB|CD) = %d, want 2", h.Frequency(ab))
	}
	if h.Frequency(ac) != 1 {
		t.Errorf("freq(AC|BD) = %d, want 1", h.Frequency(ac))
	}
	if h.Frequency(ad) != 0 {
		t.Errorf("freq(AD|BC) = %d, want 0 (absent)", h.Frequency(ad))
	}
	if !approxEq(h.SupportOf(ab), 2.0/3.0) {
		t.Errorf("support = %v", h.SupportOf(ab))
	}
}

// TestAgreementAllEngines is the paper's §III.C accuracy claim: DS, DSMP,
// HashRF and BFHRF report identical average RF values (Q = R).
func TestAgreementAllEngines(t *testing.T) {
	trees, ts := randomCollection(31, 12, 25)
	src := collection.FromTrees(trees)

	h, err := BuildDefault(src, ts)
	if err != nil {
		t.Fatal(err)
	}
	bfhrf, err := h.AverageRF(src, QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := seqrf.AverageRF(src, src, seqrf.Options{Taxa: ts, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dsmp, err := seqrf.AverageRF(src, src, seqrf.Options{Taxa: ts, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	hrf, err := hashrf.AverageRF(src, hashrf.Options{Taxa: ts, AcceptUnweighted: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trees {
		if !approxEq(bfhrf[i].AvgRF, ds[i]) {
			t.Errorf("tree %d: BFHRF %v vs DS %v", i, bfhrf[i].AvgRF, ds[i])
		}
		if !approxEq(ds[i], dsmp[i]) {
			t.Errorf("tree %d: DS %v vs DSMP %v", i, ds[i], dsmp[i])
		}
		if !approxEq(ds[i], hrf[i]) {
			t.Errorf("tree %d: DS %v vs HashRF %v", i, ds[i], hrf[i])
		}
	}
}

// TestQuickAgreesWithDayMean verifies Algorithm 2's equivalence to the
// definition: avgRF(T') = (1/r)·Σ RF(T, T').
func TestQuickAgreesWithDayMean(t *testing.T) {
	f := func(seed int64, sz, rsz uint8) bool {
		n := int(sz)%20 + 5
		r := int(rsz)%15 + 2
		trees, ts := randomCollection(seed, n, r)
		h, err := BuildDefault(collection.FromTrees(trees), ts)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		query := simphy.RandomBinary(ts, rng)
		got, err := h.AverageRFOne(query, QueryOptions{RequireComplete: true})
		if err != nil {
			return false
		}
		sum := 0
		for _, ref := range trees {
			sum += day.MustRF(query, ref)
		}
		return approxEq(got, float64(sum)/float64(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	trees, ts := randomCollection(77, 15, 40)
	src := collection.FromTrees(trees)
	var baseline []Result
	for _, w := range []int{1, 2, 8, 16} {
		h, err := Build(src, ts, BuildOptions{Workers: w, RequireComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.AverageRF(src, QueryOptions{Workers: w, RequireComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		for i := range res {
			if !approxEq(res[i].AvgRF, baseline[i].AvgRF) {
				t.Errorf("workers=%d tree %d: %v vs %v", w, i, res[i].AvgRF, baseline[i].AvgRF)
			}
		}
	}
}

func TestDisparateQueryAndReference(t *testing.T) {
	// Different Q and R — the capability HashRF lacks (§VII.D).
	refs, ts := randomCollection(5, 10, 20)
	rng := rand.New(rand.NewSource(6))
	queries := make([]*tree.Tree, 7)
	for i := range queries {
		queries[i] = simphy.RandomBinary(ts, rng)
	}
	h := buildHash(t, refs, ts)
	res, err := h.AverageRF(collection.FromTrees(queries), QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := seqrf.AverageRF(collection.FromTrees(queries), collection.FromTrees(refs), seqrf.Options{Taxa: ts})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !approxEq(res[i].AvgRF, ds[i]) {
			t.Errorf("query %d: BFHRF %v vs DS %v", i, res[i].AvgRF, ds[i])
		}
	}
}

func TestNormalizedVariant(t *testing.T) {
	trees, ts := randomCollection(13, 10, 10)
	h := buildHash(t, trees, ts)
	plain, err := h.AverageRF(collection.FromTrees(trees), QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := h.AverageRF(collection.FromTrees(trees), QueryOptions{Variant: Normalized, RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	maxRF := float64(2 * (ts.Len() - 3))
	for i := range plain {
		if !approxEq(norm[i].AvgRF, plain[i].AvgRF/maxRF) {
			t.Errorf("normalized[%d] = %v, want %v", i, norm[i].AvgRF, plain[i].AvgRF/maxRF)
		}
		if norm[i].AvgRF < 0 || norm[i].AvgRF > 1 {
			t.Errorf("normalized out of [0,1]: %v", norm[i].AvgRF)
		}
	}
}

func TestWeightedVariant(t *testing.T) {
	// Weighted RF against a reference of one tree must equal the direct
	// weighted symmetric difference (non-shared lengths only).
	ref := newick.MustParse("((A:1,B:1):2,(C:1,D:1):2);")
	qt := newick.MustParse("((A:1,C:1):4,(B:1,D:1):4);")
	h := buildHash(t, []*tree.Tree{ref}, abcd)
	if !h.Weighted() {
		t.Fatal("hash should be weighted")
	}
	got, err := h.AverageRFOne(qt, QueryOptions{Variant: Weighted, RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	// Unshared: ref's AB|CD split (length 2) + query's AC|BD split (4) = 6.
	if !approxEq(got, 6) {
		t.Errorf("weighted avg = %v, want 6", got)
	}
	// Identical tree → 0.
	same, err := h.AverageRFOne(ref.Clone(), QueryOptions{Variant: Weighted, RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(same, 0) {
		t.Errorf("weighted self distance = %v, want 0", same)
	}
}

func TestWeightedVariantRequiresLengths(t *testing.T) {
	refs := []*tree.Tree{newick.MustParse("((A,B),(C,D));")}
	h := buildHash(t, refs, abcd)
	if h.Weighted() {
		t.Fatal("hash over unweighted trees must not claim weighted")
	}
	if _, err := h.AverageRFOne(newick.MustParse("((A,B),(C,D));"), QueryOptions{Variant: Weighted}); err == nil {
		t.Error("weighted variant over unweighted hash should fail")
	}
}

func TestFilteredVariant(t *testing.T) {
	// With every bipartition filtered out, all distances are 0.
	trees, ts := randomCollection(21, 10, 8)
	h, err := Build(collection.FromTrees(trees), ts, BuildOptions{
		RequireComplete: true,
		Filter:          func(bipart.Bipartition) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.UniqueBipartitions() != 0 {
		t.Fatalf("filtered hash should be empty, has %d", h.UniqueBipartitions())
	}
	res, err := h.AverageRF(collection.FromTrees(trees), QueryOptions{
		RequireComplete: true,
		Filter:          func(bipart.Bipartition) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.AvgRF != 0 {
			t.Errorf("filtered distance = %v, want 0", r.AvgRF)
		}
	}
}

func TestSizeFilterMatchesSeqrf(t *testing.T) {
	// The same size filter applied to BFHRF and to the sequential engine
	// must give the same distances — extensibility parity (§VII.F).
	trees, ts := randomCollection(41, 12, 15)
	filter := bipart.SizeFilter(3, 0, ts.Len())
	src := collection.FromTrees(trees)
	h, err := Build(src, ts, BuildOptions{RequireComplete: true, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.AverageRF(src, QueryOptions{RequireComplete: true, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := seqrf.AverageRF(src, src, seqrf.Options{Taxa: ts, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !approxEq(res[i].AvgRF, ds[i]) {
			t.Errorf("tree %d: filtered BFHRF %v vs DS %v", i, res[i].AvgRF, ds[i])
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildDefault(collection.FromTrees(nil), abcd); err == nil {
		t.Error("empty reference collection should fail")
	}
	if _, err := BuildDefault(collection.FromTrees([]*tree.Tree{newick.MustParse("(A,B,C);")}), abcd); err == nil {
		t.Error("incomplete tree should fail with RequireComplete")
	}
	if _, err := Build(collection.FromTrees(nil), nil, BuildOptions{}); err == nil {
		t.Error("nil taxa should fail")
	}
}

func TestQueryErrors(t *testing.T) {
	trees, ts := randomCollection(3, 8, 5)
	h := buildHash(t, trees, ts)
	bad := newick.MustParse("(A,B,C);")
	if _, err := h.AverageRFOne(bad, QueryOptions{RequireComplete: true}); err == nil {
		t.Error("query with wrong taxa should fail")
	}
	if _, err := h.AverageRF(collection.FromTrees([]*tree.Tree{bad}), QueryOptions{RequireComplete: true}); err == nil {
		t.Error("collection query with wrong taxa should fail")
	}
}

func TestBest(t *testing.T) {
	rs := []Result{{0, 3.5}, {1, 1.25}, {2, 2.0}}
	b, err := Best(rs)
	if err != nil || b.Index != 1 {
		t.Errorf("Best = %+v, err %v", b, err)
	}
	if _, err := Best(nil); err == nil {
		t.Error("Best of nothing should fail")
	}
}

func TestEntries(t *testing.T) {
	refs := []*tree.Tree{
		newick.MustParse("((A,B),(C,D));"),
		newick.MustParse("((A,B),(C,D));"),
		newick.MustParse("((A,C),(B,D));"),
	}
	h := buildHash(t, refs, abcd)
	all, err := h.Entries(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("entries = %d, want 2", len(all))
	}
	if all[0].Frequency != 2 || all[1].Frequency != 1 {
		t.Errorf("entries not sorted by frequency: %+v", all)
	}
	maj, err := h.Entries(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(maj) != 1 {
		t.Errorf("minFreq=2 entries = %d, want 1", len(maj))
	}
}
