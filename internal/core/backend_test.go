package core

import (
	"math/rand"
	"testing"

	"repro/internal/collection"
	"repro/internal/taxa"
)

// The backend-equivalence property: the open-addressing table, the
// succinct table, and the legacy map must be observationally identical —
// byte-identical Entries output and identical AverageRF across every
// variant — on randomized tree collections. Branch lengths in
// randomCollection are unit, so even the weighted sums are exact in
// floating point regardless of fold order.

// equivBackends builds the same collection on all three backends with the
// given worker count; the map hash is first (the reference fold).
func equivBackends(t *testing.T, src collection.Source, ts *taxa.Set, workers int) map[Backend]*FreqHash {
	t.Helper()
	hs := make(map[Backend]*FreqHash, 3)
	for _, b := range []Backend{BackendMap, BackendOpenAddressing, BackendSuccinct} {
		h, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: workers, Backend: b})
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if h.Backend() != b {
			t.Fatalf("backend selection wrong: built %v, want %v", h.Backend(), b)
		}
		hs[b] = h
	}
	return hs
}

func TestBackendsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 10 + rng.Intn(120) // 1 to 3 words per mask
		r := 20 + rng.Intn(120)
		trees, ts := randomCollection(int64(100+trial), n, r)
		src := collection.FromTrees(trees)

		hs := equivBackends(t, src, ts, 1)
		mp := hs[BackendMap]
		for _, b := range []Backend{BackendOpenAddressing, BackendSuccinct} {
			h := hs[b]
			if h.UniqueBipartitions() != mp.UniqueBipartitions() ||
				h.TotalBipartitions() != mp.TotalBipartitions() {
				t.Fatalf("trial %d %v: sizes differ: unique %d/%d total %d/%d", trial, b,
					h.UniqueBipartitions(), mp.UniqueBipartitions(),
					h.TotalBipartitions(), mp.TotalBipartitions())
			}

			// Entries(minFreq): byte-identical, including order.
			for _, minFreq := range []int{0, 2} {
				eh, err := h.Entries(minFreq)
				if err != nil {
					t.Fatal(err)
				}
				em, err := mp.Entries(minFreq)
				if err != nil {
					t.Fatal(err)
				}
				if len(eh) != len(em) {
					t.Fatalf("trial %d %v minFreq %d: %d vs %d entries", trial, b, minFreq, len(eh), len(em))
				}
				for i := range eh {
					if eh[i].Bipartition.Key() != em[i].Bipartition.Key() ||
						eh[i].Frequency != em[i].Frequency ||
						eh[i].Support != em[i].Support ||
						eh[i].MeanLength != em[i].MeanLength {
						t.Fatalf("trial %d %v minFreq %d entry %d differs: %+v vs %+v",
							trial, b, minFreq, i, eh[i], em[i])
					}
				}
			}

			// AverageRF: identical across every variant (unit lengths make
			// the weighted sums exact, so == is the right comparison).
			for _, v := range []Variant{Plain, Normalized, Weighted} {
				rh, err := h.AverageRF(src, QueryOptions{RequireComplete: true, Workers: 1, Variant: v})
				if err != nil {
					t.Fatal(err)
				}
				rm, err := mp.AverageRF(src, QueryOptions{RequireComplete: true, Workers: 1, Variant: v})
				if err != nil {
					t.Fatal(err)
				}
				for i := range rh {
					if rh[i].AvgRF != rm[i].AvgRF {
						t.Fatalf("trial %d %v variant %v tree %d: %v vs %v",
							trial, b, v, i, rh[i].AvgRF, rm[i].AvgRF)
					}
				}
			}
		}
	}
}

// TestBackendsEquivalentParallelBuild repeats the Plain check with a
// parallel build: integer frequencies are order-independent, so the
// backends must still agree exactly no matter how trees land on workers.
// For the succinct backend this also exercises the parallel consuming
// merge and the post-merge dictionary freeze.
func TestBackendsEquivalentParallelBuild(t *testing.T) {
	trees, ts := randomCollection(53, 80, 400)
	src := collection.FromTrees(trees)
	hs := equivBackends(t, src, ts, 6)
	rm, err := hs[BackendMap].AverageRF(src, QueryOptions{RequireComplete: true, Variant: Plain})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{BackendOpenAddressing, BackendSuccinct} {
		rh, err := hs[b].AverageRF(src, QueryOptions{RequireComplete: true, Variant: Plain})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rh {
			if rh[i].AvgRF != rm[i].AvgRF {
				t.Fatalf("%v tree %d: %v vs %v", b, i, rh[i].AvgRF, rm[i].AvgRF)
			}
		}
	}
}

// TestBackendAutoSelection pins the defaulting rules: auto is
// open-addressing below the succinct key-size threshold and succinct at
// it, compressed keys force the map, and an explicit table backend +
// CompressKeys request is an error.
func TestBackendAutoSelection(t *testing.T) {
	trees, ts := randomCollection(3, 16, 10)
	src := collection.FromTrees(trees)
	h, err := Build(src, ts, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendOpenAddressing {
		t.Fatalf("auto backend = %v, want openaddr", h.Backend())
	}
	h, err = Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendMap {
		t.Fatalf("auto+compressed backend = %v, want map", h.Backend())
	}
	if _, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true, Backend: BackendOpenAddressing}); err == nil {
		t.Fatal("openaddr + CompressKeys did not error")
	}
	if _, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true, Backend: BackendSuccinct}); err == nil {
		t.Fatal("succinct + CompressKeys did not error")
	}
	// At and past autoSuccinctKeyBytes of raw key, auto flips to succinct.
	bigTrees, bigTS := randomCollection(5, 8*autoSuccinctKeyBytes, 4)
	h, err = Build(collection.FromTrees(bigTrees), bigTS, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendSuccinct {
		t.Fatalf("auto backend at n=%d = %v, want succinct", bigTS.Len(), h.Backend())
	}
	// CompressKeys still wins at huge n (the §IX ablation stays reachable).
	h, err = Build(collection.FromTrees(bigTrees), bigTS, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendMap {
		t.Fatalf("auto+compressed backend at n=%d = %v, want map", bigTS.Len(), h.Backend())
	}
}

// TestBackendIncrementalUpdates checks AddTree/RemoveTree equivalence:
// after identical update sequences all backends answer identically, and
// the table tombstone paths (remove to zero, then re-add) keep the
// structures consistent — for the succinct table that revival happens in
// the frozen, dictionary-bearing state.
func TestBackendIncrementalUpdates(t *testing.T) {
	trees, ts := randomCollection(29, 40, 30)
	src := collection.FromTrees(trees[:20])
	hs := equivBackends(t, src, ts, 1)
	for _, h := range hs {
		for _, tr := range trees[20:] {
			if err := h.AddTree(tr, nil, true); err != nil {
				t.Fatal(err)
			}
		}
		// Remove the first 10 (drives some frequencies to 0 → tombstones),
		// then re-add 5 of them (revival path).
		for _, tr := range trees[:10] {
			if err := h.RemoveTree(tr, nil, true); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range trees[:5] {
			if err := h.AddTree(tr, nil, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	mp := hs[BackendMap]
	all := collection.FromTrees(trees)
	rm, err := mp.AverageRF(all, QueryOptions{RequireComplete: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{BackendOpenAddressing, BackendSuccinct} {
		h := hs[b]
		if h.UniqueBipartitions() != mp.UniqueBipartitions() ||
			h.TotalBipartitions() != mp.TotalBipartitions() {
			t.Fatalf("%v post-update sizes differ: unique %d/%d total %d/%d", b,
				h.UniqueBipartitions(), mp.UniqueBipartitions(),
				h.TotalBipartitions(), mp.TotalBipartitions())
		}
		rh, err := h.AverageRF(all, QueryOptions{RequireComplete: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rh {
			if rh[i].AvgRF != rm[i].AvgRF {
				t.Fatalf("%v tree %d: %v vs %v", b, i, rh[i].AvgRF, rm[i].AvgRF)
			}
		}
	}
}
