package core

import (
	"math/rand"
	"testing"

	"repro/internal/collection"
)

// The backend-equivalence property: the open-addressing table and the
// legacy map must be observationally identical — byte-identical Entries
// output and identical AverageRF across every variant — on randomized
// tree collections. Branch lengths in randomCollection are unit, so even
// the weighted sums are exact in floating point regardless of fold order.

func TestBackendsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 10 + rng.Intn(120) // 1 to 3 words per mask
		r := 20 + rng.Intn(120)
		trees, ts := randomCollection(int64(100+trial), n, r)
		src := collection.FromTrees(trees)

		oa, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: 1, Backend: BackendOpenAddressing})
		if err != nil {
			t.Fatal(err)
		}
		mp, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: 1, Backend: BackendMap})
		if err != nil {
			t.Fatal(err)
		}
		if oa.Backend() != BackendOpenAddressing || mp.Backend() != BackendMap {
			t.Fatal("backend selection wrong")
		}
		if oa.UniqueBipartitions() != mp.UniqueBipartitions() ||
			oa.TotalBipartitions() != mp.TotalBipartitions() {
			t.Fatalf("trial %d: sizes differ: unique %d/%d total %d/%d", trial,
				oa.UniqueBipartitions(), mp.UniqueBipartitions(),
				oa.TotalBipartitions(), mp.TotalBipartitions())
		}

		// Entries(minFreq): byte-identical, including order.
		for _, minFreq := range []int{0, 2} {
			eo, err := oa.Entries(minFreq)
			if err != nil {
				t.Fatal(err)
			}
			em, err := mp.Entries(minFreq)
			if err != nil {
				t.Fatal(err)
			}
			if len(eo) != len(em) {
				t.Fatalf("trial %d minFreq %d: %d vs %d entries", trial, minFreq, len(eo), len(em))
			}
			for i := range eo {
				if eo[i].Bipartition.Key() != em[i].Bipartition.Key() ||
					eo[i].Frequency != em[i].Frequency ||
					eo[i].Support != em[i].Support ||
					eo[i].MeanLength != em[i].MeanLength {
					t.Fatalf("trial %d minFreq %d entry %d differs: %+v vs %+v",
						trial, minFreq, i, eo[i], em[i])
				}
			}
		}

		// AverageRF: identical across every variant (unit lengths make the
		// weighted sums exact, so == is the right comparison).
		for _, v := range []Variant{Plain, Normalized, Weighted} {
			ro, err := oa.AverageRF(src, QueryOptions{RequireComplete: true, Workers: 1, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			rm, err := mp.AverageRF(src, QueryOptions{RequireComplete: true, Workers: 1, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ro {
				if ro[i].AvgRF != rm[i].AvgRF {
					t.Fatalf("trial %d variant %v tree %d: %v vs %v",
						trial, v, i, ro[i].AvgRF, rm[i].AvgRF)
				}
			}
		}
	}
}

// TestBackendsEquivalentParallelBuild repeats the Plain check with a
// parallel build: integer frequencies are order-independent, so the
// backends must still agree exactly no matter how trees land on workers.
func TestBackendsEquivalentParallelBuild(t *testing.T) {
	trees, ts := randomCollection(53, 80, 400)
	src := collection.FromTrees(trees)
	oa, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: 6, Backend: BackendOpenAddressing})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: 6, Backend: BackendMap})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := oa.AverageRF(src, QueryOptions{RequireComplete: true, Variant: Plain})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mp.AverageRF(src, QueryOptions{RequireComplete: true, Variant: Plain})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ro {
		if ro[i].AvgRF != rm[i].AvgRF {
			t.Fatalf("tree %d: %v vs %v", i, ro[i].AvgRF, rm[i].AvgRF)
		}
	}
}

// TestBackendAutoSelection pins the defaulting rules: auto is
// open-addressing, except compressed keys force the map, and an explicit
// OA + CompressKeys request is an error.
func TestBackendAutoSelection(t *testing.T) {
	trees, ts := randomCollection(3, 16, 10)
	src := collection.FromTrees(trees)
	h, err := Build(src, ts, BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendOpenAddressing {
		t.Fatalf("auto backend = %v, want openaddr", h.Backend())
	}
	h, err = Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Backend() != BackendMap {
		t.Fatalf("auto+compressed backend = %v, want map", h.Backend())
	}
	if _, err := Build(src, ts, BuildOptions{RequireComplete: true, CompressKeys: true, Backend: BackendOpenAddressing}); err == nil {
		t.Fatal("openaddr + CompressKeys did not error")
	}
}

// TestBackendIncrementalUpdates checks AddTree/RemoveTree equivalence:
// after identical update sequences both backends answer identically, and
// the open-addressing tombstone path (remove to zero, then re-add) keeps
// the table consistent.
func TestBackendIncrementalUpdates(t *testing.T) {
	trees, ts := randomCollection(29, 40, 30)
	src := collection.FromTrees(trees[:20])
	oa, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: 1, Backend: BackendOpenAddressing})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Build(src, ts, BuildOptions{RequireComplete: true, Workers: 1, Backend: BackendMap})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*FreqHash{oa, mp} {
		for _, tr := range trees[20:] {
			if err := h.AddTree(tr, nil, true); err != nil {
				t.Fatal(err)
			}
		}
		// Remove the first 10 (drives some frequencies to 0 → tombstones),
		// then re-add 5 of them (revival path).
		for _, tr := range trees[:10] {
			if err := h.RemoveTree(tr, nil, true); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range trees[:5] {
			if err := h.AddTree(tr, nil, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if oa.UniqueBipartitions() != mp.UniqueBipartitions() ||
		oa.TotalBipartitions() != mp.TotalBipartitions() {
		t.Fatalf("post-update sizes differ: unique %d/%d total %d/%d",
			oa.UniqueBipartitions(), mp.UniqueBipartitions(),
			oa.TotalBipartitions(), mp.TotalBipartitions())
	}
	all := collection.FromTrees(trees)
	ro, err := oa.AverageRF(all, QueryOptions{RequireComplete: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mp.AverageRF(all, QueryOptions{RequireComplete: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ro {
		if ro[i].AvgRF != rm[i].AvgRF {
			t.Fatalf("tree %d: %v vs %v", i, ro[i].AvgRF, rm[i].AvgRF)
		}
	}
}
