package core

import (
	"fmt"

	"repro/internal/bfhtable"
)

// Zero-copy restore: adopt a table whose shard storage was installed
// straight from snapshot bytes (internal/bfhsnap) instead of folding
// entries one by one through a Restorer. The snapshot carries the
// authoritative Σfreq and Σlength totals, so a save/load round trip is
// bit-exact even for weighted sums, whose floating-point value depends on
// accumulation order.

// OpenAddr returns the open-addressing backend table, or nil when another
// backend is active. Snapshot writers use it to reach shard storage.
func (h *FreqHash) OpenAddr() *bfhtable.Table { return h.oa }

// TotalLengthSum returns Σ branch length over every hashed bipartition
// instance — the weighted counterpart of TotalBipartitions. Snapshots
// persist it so a reload restores the exact float64.
func (h *FreqHash) TotalLengthSum() float64 { return h.lenSum }

// AdoptTable wraps an already-populated open-addressing table as a
// FreqHash. sum and lenSum are the authoritative totals; sum is
// cross-checked against the table's stored frequencies so a snapshot whose
// sections and header disagree is rejected.
func AdoptTable(spec RestoreSpec, tbl *bfhtable.Table, sum uint64, lenSum float64) (*FreqHash, error) {
	if spec.Taxa == nil {
		return nil, fmt.Errorf("core: adopt requires a taxon catalogue")
	}
	if spec.NumTrees <= 0 {
		return nil, fmt.Errorf("core: adopted hash has no trees")
	}
	if spec.CompressKeys {
		return nil, fmt.Errorf("core: compressed keys require the map backend")
	}
	if tbl == nil {
		return nil, fmt.Errorf("core: adopt requires a table")
	}
	if nw := wordsPerKey(spec.Taxa); tbl.WordsPerKey() != nw {
		return nil, fmt.Errorf("core: adopted table has %d-word keys, catalogue needs %d", tbl.WordsPerKey(), nw)
	}
	if got, _ := tbl.Totals(); got != sum {
		return nil, fmt.Errorf("core: adopted table holds %d bipartition instances, header declares %d", got, sum)
	}
	return &FreqHash{
		taxa:     spec.Taxa,
		oa:       tbl,
		sum:      sum,
		lenSum:   lenSum,
		numTrees: spec.NumTrees,
		weighted: spec.Weighted,
	}, nil
}

// AdoptSuccinct is AdoptTable for the succinct backend.
func AdoptSuccinct(spec RestoreSpec, tbl *bfhtable.SuccinctTable, sum uint64, lenSum float64) (*FreqHash, error) {
	if spec.Taxa == nil {
		return nil, fmt.Errorf("core: adopt requires a taxon catalogue")
	}
	if spec.NumTrees <= 0 {
		return nil, fmt.Errorf("core: adopted hash has no trees")
	}
	if spec.CompressKeys {
		return nil, fmt.Errorf("core: compressed keys require the map backend")
	}
	if tbl == nil {
		return nil, fmt.Errorf("core: adopt requires a table")
	}
	if tbl.Width() != spec.Taxa.Len() {
		return nil, fmt.Errorf("core: adopted table is %d taxa wide, catalogue has %d", tbl.Width(), spec.Taxa.Len())
	}
	if got, _ := tbl.Totals(); got != sum {
		return nil, fmt.Errorf("core: adopted table holds %d bipartition instances, header declares %d", got, sum)
	}
	return &FreqHash{
		taxa:     spec.Taxa,
		st:       tbl,
		sum:      sum,
		lenSum:   lenSum,
		numTrees: spec.NumTrees,
		weighted: spec.Weighted,
	}, nil
}

// OverrideTotals replaces the restorer's accumulated totals with the
// snapshot's authoritative ones. The frequency total must match what the
// entries actually summed to (a mismatch means a corrupt snapshot); the
// tree count and length total are adopted verbatim, restoring the exact
// float64 the saved hash held rather than one re-accumulated in a
// different order.
func (r *Restorer) OverrideTotals(trees int, sum uint64, lenSum float64) error {
	if trees <= 0 {
		return fmt.Errorf("core: restored hash has no trees")
	}
	if r.h.sum != sum {
		return fmt.Errorf("core: restored entries sum to %d instances, header declares %d", r.h.sum, sum)
	}
	r.h.numTrees = trees
	r.h.lenSum = lenSum
	return nil
}
