package taxa

import (
	"strings"
	"testing"
)

func TestNewSetSortsNames(t *testing.T) {
	s, err := NewSet([]string{"charlie", "alpha", "bravo"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "bravo", "charlie"}
	got := s.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewOrderedSetPreservesOrder(t *testing.T) {
	s, err := NewOrderedSet([]string{"z", "a", "m"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name(0) != "z" || s.Name(1) != "a" || s.Name(2) != "m" {
		t.Errorf("order not preserved: %v", s.Names())
	}
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	if _, err := NewSet([]string{"a", "b", "a"}); err == nil {
		t.Fatal("expected error for duplicate names")
	}
}

func TestNewSetRejectsEmptyName(t *testing.T) {
	if _, err := NewSet([]string{"a", ""}); err == nil {
		t.Fatal("expected error for empty name")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := MustNewSet([]string{"d", "a", "c", "b"})
	for i := 0; i < s.Len(); i++ {
		name := s.Name(i)
		j, ok := s.Index(name)
		if !ok || j != i {
			t.Errorf("Index(%q) = (%d, %v), want (%d, true)", name, j, ok, i)
		}
	}
}

func TestIndexAbsent(t *testing.T) {
	s := MustNewSet([]string{"a", "b"})
	if i, ok := s.Index("zzz"); ok || i != -1 {
		t.Errorf("Index(zzz) = (%d, %v), want (-1, false)", i, ok)
	}
}

func TestNilAndEmptySet(t *testing.T) {
	var nilSet *Set
	if nilSet.Len() != 0 {
		t.Error("nil set Len != 0")
	}
	if _, ok := nilSet.Index("a"); ok {
		t.Error("nil set should not contain anything")
	}
	empty := MustNewSet(nil)
	if empty.Len() != 0 {
		t.Error("empty set Len != 0")
	}
}

func TestEqualAndSameNames(t *testing.T) {
	a := MustNewSet([]string{"x", "y", "z"})
	b := MustNewSet([]string{"z", "y", "x"}) // sorted identically
	if !a.Equal(b) {
		t.Error("sorted sets with same names should be Equal")
	}
	c, _ := NewOrderedSet([]string{"z", "y", "x"})
	if a.Equal(c) {
		t.Error("different order should not be Equal")
	}
	if !a.SameNames(c) {
		t.Error("same names should be SameNames regardless of order")
	}
	d := MustNewSet([]string{"x", "y"})
	if a.Equal(d) || a.SameNames(d) {
		t.Error("different sizes should not match")
	}
}

func TestIntersect(t *testing.T) {
	a := MustNewSet([]string{"a", "b", "c", "d"})
	b := MustNewSet([]string{"b", "d", "e"})
	got := a.Intersect(b)
	if got.Len() != 2 || !got.Contains("b") || !got.Contains("d") {
		t.Errorf("Intersect = %v, want {b, d}", got.Names())
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := MustNewSet([]string{"a"})
	b := MustNewSet([]string{"b"})
	if got := a.Intersect(b); got.Len() != 0 {
		t.Errorf("disjoint Intersect = %v, want empty", got.Names())
	}
}

func TestUnion(t *testing.T) {
	a := MustNewSet([]string{"a", "c"})
	b := MustNewSet([]string{"b", "c"})
	got := a.Union(b)
	if got.Len() != 3 {
		t.Fatalf("Union size = %d, want 3", got.Len())
	}
	for _, n := range []string{"a", "b", "c"} {
		if !got.Contains(n) {
			t.Errorf("Union missing %q", n)
		}
	}
}

func TestMapping(t *testing.T) {
	a := MustNewSet([]string{"a", "b", "c"})
	b := MustNewSet([]string{"b", "c", "d"})
	m := a.Mapping(b)
	// a:0 -> absent; b:1 -> 0; c:2 -> 1 in b's sorted order {b,c,d}.
	if m[0] != -1 {
		t.Errorf("Mapping[a] = %d, want -1", m[0])
	}
	ib, _ := b.Index("b")
	ic, _ := b.Index("c")
	if m[1] != ib || m[2] != ic {
		t.Errorf("Mapping = %v", m)
	}
}

func TestGenerate(t *testing.T) {
	s := Generate(12)
	if s.Len() != 12 {
		t.Fatalf("Generate(12).Len() = %d", s.Len())
	}
	if s.Name(0) != "t0000" || s.Name(11) != "t0011" {
		t.Errorf("unexpected names: %q, %q", s.Name(0), s.Name(11))
	}
	// Names must already be in sorted order for consistent bit assignment.
	names := s.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names out of order at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestStringTruncates(t *testing.T) {
	s := Generate(50)
	str := s.String()
	if !strings.Contains(str, "more") {
		t.Errorf("large set String should truncate, got %q", str)
	}
	small := MustNewSet([]string{"a", "b"})
	if small.String() != "taxa.Set{a, b}" {
		t.Errorf("small set String = %q", small.String())
	}
}
