// Package taxa provides taxon catalogues: immutable, ordered mappings
// between taxon names and dense integer indices.
//
// Every bipartition in this repository is encoded as a bit vector whose bit
// positions are taxon indices; the Set type is the single source of truth
// for that ordering. Following the paper (and Dendropy's convention), taxa
// are ordered lexicographically by name unless an explicit order is given.
package taxa

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an immutable catalogue of taxon names with dense indices
// 0..Len()-1. The zero value is an empty set.
type Set struct {
	names []string       // index -> name, in catalogue order
	index map[string]int // name -> index
}

// NewSet builds a catalogue from names, sorted lexicographically.
// Duplicate or empty names are an error.
func NewSet(names []string) (*Set, error) {
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)
	return NewOrderedSet(sorted)
}

// NewOrderedSet builds a catalogue preserving the given order.
// Duplicate or empty names are an error.
func NewOrderedSet(names []string) (*Set, error) {
	s := &Set{
		names: make([]string, len(names)),
		index: make(map[string]int, len(names)),
	}
	copy(s.names, names)
	for i, n := range s.names {
		if n == "" {
			return nil, fmt.Errorf("taxa: empty taxon name at position %d", i)
		}
		if prev, dup := s.index[n]; dup {
			return nil, fmt.Errorf("taxa: duplicate taxon name %q (positions %d and %d)", n, prev, i)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustNewSet is NewSet but panics on error. For tests and literals.
func MustNewSet(names []string) *Set {
	s, err := NewSet(names)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of taxa n.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.names)
}

// Name returns the name of taxon i. It panics if i is out of range.
func (s *Set) Name(i int) string { return s.names[i] }

// Names returns a copy of all names in catalogue order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Index returns the index of name, or (-1, false) if absent.
func (s *Set) Index(name string) (int, bool) {
	if s == nil {
		return -1, false
	}
	i, ok := s.index[name]
	if !ok {
		return -1, false
	}
	return i, true
}

// Contains reports whether name is in the catalogue.
func (s *Set) Contains(name string) bool {
	_, ok := s.Index(name)
	return ok
}

// Equal reports whether two catalogues hold the same names in the same order.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// SameNames reports whether two catalogues hold the same names,
// irrespective of order.
func (s *Set) SameNames(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for _, n := range s.names {
		if !o.Contains(n) {
			return false
		}
	}
	return true
}

// Intersect returns a new lexicographically ordered catalogue holding the
// names present in both s and o. Used for variable-taxa RF via intersection
// reduction (paper §VII.E).
func (s *Set) Intersect(o *Set) *Set {
	var common []string
	for _, n := range s.names {
		if o.Contains(n) {
			common = append(common, n)
		}
	}
	out, err := NewSet(common)
	if err != nil {
		// Unreachable: names from a valid Set are unique and non-empty.
		panic(err)
	}
	return out
}

// Union returns a new lexicographically ordered catalogue holding the names
// present in either s or o.
func (s *Set) Union(o *Set) *Set {
	seen := make(map[string]bool, s.Len()+o.Len())
	var all []string
	for _, n := range s.names {
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	for _, n := range o.names {
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	out, err := NewSet(all)
	if err != nil {
		panic(err)
	}
	return out
}

// Mapping returns, for each index in s, the index of the same name in o, or
// -1 if the name is absent from o. Used to project bipartitions between
// catalogues.
func (s *Set) Mapping(o *Set) []int {
	m := make([]int, s.Len())
	for i, n := range s.names {
		if j, ok := o.Index(n); ok {
			m[i] = j
		} else {
			m[i] = -1
		}
	}
	return m
}

// String renders the catalogue compactly, for diagnostics.
func (s *Set) String() string {
	if s.Len() == 0 {
		return "taxa.Set{}"
	}
	var b strings.Builder
	b.WriteString("taxa.Set{")
	for i, n := range s.names {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 8 && len(s.names) > 10 {
			fmt.Fprintf(&b, "… +%d more", len(s.names)-i)
			break
		}
		b.WriteString(n)
	}
	b.WriteString("}")
	return b.String()
}

// Generate returns a synthetic catalogue of n taxa named t0000, t0001, …
// in lexicographic (= numeric) order. Handy for simulations and tests.
func Generate(n int) *Set {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%04d", i)
	}
	s, err := NewOrderedSet(names)
	if err != nil {
		panic(err)
	}
	return s
}
