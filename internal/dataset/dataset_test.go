package dataset

import (
	"io"
	"testing"

	"repro/internal/collection"
	"repro/internal/tree"
)

func TestSpecsMatchTableII(t *testing.T) {
	cases := []struct {
		spec     Spec
		n, trees int
	}{
		{Avian(), 48, 14446},
		{Insect(), 144, 149278},
		{VariableTrees(100000), 100, 100000},
		{VariableTaxa(1000), 1000, 1000},
	}
	for _, c := range cases {
		if c.spec.NumTaxa != c.n || c.spec.NumTrees != c.trees {
			t.Errorf("%s: n=%d r=%d, want n=%d r=%d",
				c.spec.Name, c.spec.NumTaxa, c.spec.NumTrees, c.n, c.trees)
		}
	}
}

func TestSourceStreamsValidTrees(t *testing.T) {
	spec := VariableTrees(10)
	src, ts := spec.Source()
	if ts.Len() != 100 {
		t.Fatalf("taxa = %d", ts.Len())
	}
	count := 0
	for {
		tr, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", count, err)
		}
		if tr.NumLeaves() != 100 {
			t.Fatalf("tree %d leaves = %d", count, tr.NumLeaves())
		}
		count++
	}
	if count != 10 {
		t.Errorf("streamed %d trees", count)
	}
}

func TestSourceDeterministic(t *testing.T) {
	spec := VariableTrees(5)
	src1, _ := spec.Source()
	src2, _ := spec.Source()
	t1, err := collection.ReadAll(src1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := collection.ReadAll(src2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		a, b := t1[i].LeafNames(), t2[i].LeafNames()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tree %d differs between regenerations", i)
			}
		}
	}
}

func TestInsectIsUnweighted(t *testing.T) {
	spec := Insect()
	src, _ := spec.Source()
	tr, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	tr.Postorder(func(n *tree.Node) {
		if n.HasLength {
			t.Error("insect trees must be structure-only")
		}
	})
	if tr.NumLeaves() != 144 {
		t.Errorf("insect leaves = %d", tr.NumLeaves())
	}
}

func TestAvianIsWeighted(t *testing.T) {
	src, _ := Avian().Source()
	tr, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	lengths := 0
	tr.Postorder(func(n *tree.Node) {
		if n.HasLength {
			lengths++
		}
	})
	if lengths == 0 {
		t.Error("avian trees should carry branch lengths")
	}
}

func TestPrefix(t *testing.T) {
	trees, ts, err := VariableTaxa(100).Prefix(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 7 || ts.Len() != 100 {
		t.Errorf("Prefix: %d trees, %d taxa", len(trees), ts.Len())
	}
	if _, _, err := VariableTaxa(100).Prefix(5000); err == nil {
		t.Error("oversized prefix should fail")
	}
}

func TestQuerySet(t *testing.T) {
	spec := VariableTrees(20)
	qs, err := spec.QuerySet(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 6 {
		t.Fatalf("query set = %d", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		if q.NumLeaves() != 100 {
			t.Errorf("query %d leaves = %d", i, q.NumLeaves())
		}
	}
}

func TestCollectionsAreConcentrated(t *testing.T) {
	// MSC collections must have concentrated bipartition frequencies: far
	// fewer unique bipartitions than r·(n−3). This is the property that
	// bounds BFHRF memory (paper §VI.C) and the reason the simulation is a
	// valid stand-in for the real datasets.
	spec := VariableTrees(200)
	trees, ts, err := spec.Prefix(200)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tr := range trees {
		for _, k := range extractKeys(t, tr, ts) {
			seen[k] = true
		}
	}
	unique := len(seen)
	total := 200 * (ts.Len() - 3)
	if unique*3 > total {
		t.Errorf("unique bipartitions %d of %d total — too dispersed for an MSC collection", unique, total)
	}
}
