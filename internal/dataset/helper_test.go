package dataset

import (
	"testing"

	"repro/internal/bipart"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// extractKeys returns canonical bipartition keys of a tree over ts.
func extractKeys(t *testing.T, tr *tree.Tree, ts *taxa.Set) []string {
	t.Helper()
	ex := bipart.NewExtractor(ts)
	bs, err := ex.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(bs))
	for i, b := range bs {
		keys[i] = b.Key()
	}
	return keys
}
