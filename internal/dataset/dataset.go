// Package dataset provides the named tree collections of the paper's
// Table II. The two real collections (Avian, Insect) are not
// redistributable, so each is substituted by a multispecies-coalescent
// simulation with the same number of taxa and trees (see DESIGN.md for the
// substitution argument); the two simulated sweeps (variable trees,
// variable taxa) follow the paper's ASTRAL-II/SimPhy-style setup directly.
//
// Collections are exposed as deterministic generators: any prefix of a
// dataset can be streamed any number of times without materializing it.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/collection"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Spec describes one dataset. The zero value is not useful; use the
// constructors or the package-level variables.
type Spec struct {
	// Name identifies the dataset in tables and CLI flags.
	Name string
	// NumTaxa is n; NumTrees is the full-size r from Table II.
	NumTaxa  int
	NumTrees int
	// Seed makes the collection reproducible.
	Seed int64
	// MeanInternalBranch is the species tree's mean internal branch length
	// in coalescent units; it controls gene-tree discordance.
	MeanInternalBranch float64
	// Unweighted strips branch lengths (the Insect collection is
	// structure-only, which is what made HashRF reject it, §VI.B).
	Unweighted bool
}

// Avian substitutes the Jarvis et al. 2014 avian gene trees:
// 48 taxa, 14446 trees, weighted.
func Avian() Spec {
	return Spec{Name: "avian", NumTaxa: 48, NumTrees: 14446, Seed: 20140101, MeanInternalBranch: 0.8}
}

// Insect substitutes the Sayyari et al. 2017 insect gene trees:
// 144 taxa, 149278 trees, unweighted (structure only).
func Insect() Spec {
	return Spec{Name: "insect", NumTaxa: 144, NumTrees: 149278, Seed: 20170101, MeanInternalBranch: 0.6, Unweighted: true}
}

// VariableTrees is the n=100 sweep collection; r is chosen per data point
// (1000..100000 in the paper's Table V / Fig. 2).
func VariableTrees(r int) Spec {
	return Spec{Name: fmt.Sprintf("vartrees-r%d", r), NumTaxa: 100, NumTrees: r, Seed: 29001, MeanInternalBranch: 1.0}
}

// Replicate is the posterior-sample replicate collection: n=100 gene
// trees under a high-discordance coalescent regime (internal branches of
// 0.15 coalescent units, deep incomplete lineage sorting). Discordant
// collections share few bipartitions across trees, so the reference table
// grows near-linearly in r — the memory- and cache-pressure setting where
// query-side result caching is measured (the replicate perf workload).
func Replicate(r int) Spec {
	return Spec{Name: fmt.Sprintf("replicate-r%d", r), NumTaxa: 100, NumTrees: r, Seed: 29003, MeanInternalBranch: 0.15}
}

// VariableTaxa is the r=1000 sweep collection; n is chosen per data point
// (100..1000 in the paper's Table IV).
func VariableTaxa(n int) Spec {
	return Spec{Name: fmt.Sprintf("vartaxa-n%d", n), NumTaxa: n, NumTrees: 1000, Seed: 29002 + int64(n), MeanInternalBranch: 1.0}
}

// HugeTaxa extends the variable-taxa sweep past the paper's n=1000 into
// the regime where a raw bipartition key is n/8 bytes and the reference
// table's key storage dominates the heap — the workload family of the
// succinct-backend ablation (n=4096 and n=8192 in the perf index).
func HugeTaxa(n int) Spec {
	return Spec{Name: fmt.Sprintf("hugetaxa-n%d", n), NumTaxa: n, NumTrees: 1000, Seed: 29100 + int64(n), MeanInternalBranch: 1.0}
}

// Taxa returns the dataset's taxon catalogue.
func (s Spec) Taxa() *taxa.Set { return taxa.Generate(s.NumTaxa) }

// Source returns a deterministic streaming Source over the full collection
// together with its catalogue. Use collection.Limit for prefixes ("each
// data point is the first r trees", paper Fig. 1).
func (s Spec) Source() (collection.Source, *taxa.Set) {
	ts := s.Taxa()
	msc := s.msc(ts)
	gen := &collection.Generator{
		N: s.NumTrees,
		Make: func(i int) *tree.Tree {
			t := msc.Make(i)
			if s.Unweighted {
				simphy.StripLengths(t)
			}
			return t
		},
	}
	return gen, ts
}

func (s Spec) msc(ts *taxa.Set) *simphy.MSCCollection {
	c := simphy.NewMSCCollection(ts, s.Seed, 1.0)
	simphy.ScaleMeanInternal(c.Species, s.MeanInternalBranch)
	return c
}

// Prefix materializes the first r trees of the dataset in memory.
func (s Spec) Prefix(r int) ([]*tree.Tree, *taxa.Set, error) {
	if r > s.NumTrees {
		return nil, nil, fmt.Errorf("dataset %s: prefix %d exceeds collection size %d", s.Name, r, s.NumTrees)
	}
	src, ts := s.Source()
	limited, err := collection.Limit(src, r)
	if err != nil {
		return nil, nil, err
	}
	trees, err := collection.ReadAll(limited)
	if err != nil {
		return nil, nil, err
	}
	return trees, ts, nil
}

// QuerySet derives a disparate query collection of size q from the
// dataset: NNI/SPR perturbations of sampled reference trees, exercising
// BFHRF's different-Q-and-R capability (paper §VII.D).
func (s Spec) QuerySet(q, moves int) ([]*tree.Tree, error) {
	src, _ := s.Source()
	rng := rand.New(rand.NewSource(s.Seed * 7919))
	out := make([]*tree.Tree, 0, q)
	if err := src.Reset(); err != nil {
		return nil, err
	}
	for i := 0; i < q; i++ {
		t, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("dataset %s: query base %d: %w", s.Name, i, err)
		}
		out = append(out, simphy.PerturbNNI(t, moves, rng))
	}
	return out, nil
}
