package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/bfhsnap"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/tree"
)

// The catalog is the multi-tenant unit of serving: named, versioned
// reference collections, each answering average-RF queries. Two backend
// shapes exist — a locally pinned bfhsnap epoch (the common case: the
// snapshot is loaded once and served from this process) and a
// distributed collection riding a distrib.Coordinator's worker shards.
// Local backends refcount their pinned epoch, so a Refresh after a delta
// or compact publish swaps readers onto the new epoch without ever
// tearing a query that is mid-flight on the old one.

// StatusError maps a query failure to the HTTP status it should produce.
type StatusError struct {
	// Status is the HTTP status code (4xx input, 5xx infrastructure).
	Status int
	// Err is the underlying failure.
	Err error
}

// Error implements the error interface.
func (e *StatusError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause for errors.Is/As.
func (e *StatusError) Unwrap() error { return e.Err }

// httpStatusOf extracts the HTTP status for err: an explicit
// StatusError wins; deadline/cancellation maps to 504; anything else is
// the caller-supplied fallback.
func httpStatusOf(err error, fallback int) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
		errors.Is(err, core.ErrCanceled) {
		return http.StatusGatewayTimeout
	}
	return fallback
}

// Answer is one collection's response to a query batch.
type Answer struct {
	// Results are the per-tree averages, in request order.
	Results []core.Result
	// Coverage is the fraction of reference trees behind the answer
	// (1 = exact; lower only on a degraded distributed collection).
	Coverage float64
	// Epoch is the bfhsnap epoch that answered (0 when the collection was
	// built from files rather than a snapshot store).
	Epoch int
}

// CollectionStats describe one catalog entry for /v1/collections.
type CollectionStats struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// Kind is "local" (pinned epoch in this process) or "distributed"
	// (worker shards behind a coordinator).
	Kind string `json:"kind"`
	// Epoch is the serving snapshot epoch (0 if not epoch-backed).
	Epoch int `json:"epoch"`
	// Trees is the reference collection size.
	Trees int `json:"trees"`
	// Taxa is the catalogue size.
	Taxa int `json:"taxa"`
	// Fingerprint identifies the reference collection (hex).
	Fingerprint string `json:"fingerprint"`
}

// Backend answers average-RF queries for one reference collection.
type Backend interface {
	// Query compares the parsed trees against the collection. The context
	// carries the per-request deadline.
	Query(ctx context.Context, trees []*tree.Tree, v core.Variant) (*Answer, error)
	// Stats describes the collection (name is filled in by the catalog).
	Stats() CollectionStats
	// Close releases the backend's resources (epoch pins).
	Close()
}

// Local serves a pinned bfhsnap epoch from this process. Concurrent
// queries share one in-memory hash (FreqHash reads are lock-free); the
// pin is refcounted so Refresh never tears an in-flight query.
type Local struct {
	store *bfhsnap.Store
	// Workers bounds per-query compute parallelism (0 = GOMAXPROCS).
	Workers int

	mu  sync.Mutex
	cur *pinnedEpoch
}

// pinnedEpoch is one refcounted epoch pin. retired marks a pin that has
// been superseded by Refresh; its epoch is released when the last
// in-flight query drops its reference.
type pinnedEpoch struct {
	epoch   *bfhsnap.Epoch
	refs    int
	retired bool
}

// OpenLocal opens dir as a bfhsnap store and pins its current epoch.
func OpenLocal(dir string, workers int) (*Local, error) {
	st, err := bfhsnap.Open(dir)
	if err != nil {
		return nil, err
	}
	e, err := st.Pin()
	if err != nil {
		return nil, err
	}
	return &Local{store: st, Workers: workers, cur: &pinnedEpoch{epoch: e}}, nil
}

// acquire takes a reference on the current pin.
func (b *Local) acquire() *pinnedEpoch {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cur.refs++
	return b.cur
}

// release drops a reference; a retired pin's epoch is released with the
// last reference.
func (b *Local) release(p *pinnedEpoch) {
	b.mu.Lock()
	p.refs--
	drop := p.retired && p.refs == 0
	b.mu.Unlock()
	if drop {
		p.epoch.Release()
	}
}

// Refresh re-pins the store's current epoch — the reader half of a delta
// or compact publish. The new epoch is fully loaded before the swap, and
// the old pin is released only when its last in-flight query finishes,
// so no query ever observes a half-switched collection. Returns the
// epoch now serving.
func (b *Local) Refresh() (int, error) {
	// Re-read CURRENT first: the epoch is usually published by another
	// process (bfhrf -delta-add / -compact-bfh) and this store handle's
	// cached pointer would not see it.
	if err := b.store.Reload(); err != nil {
		return 0, err
	}
	e, err := b.store.Pin()
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	old := b.cur
	b.cur = &pinnedEpoch{epoch: e}
	old.retired = true
	drop := old.refs == 0
	b.mu.Unlock()
	if drop {
		old.epoch.Release()
	}
	return e.N, nil
}

// Query implements Backend against the pinned hash.
func (b *Local) Query(ctx context.Context, trees []*tree.Tree, v core.Variant) (*Answer, error) {
	p := b.acquire()
	defer b.release(p)
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	results, err := p.epoch.Hash.AverageRF(collection.FromTrees(trees), core.QueryOptions{
		Workers: b.Workers,
		Variant: v,
		Cancel:  cancel,
	})
	if err != nil {
		// A canceled run maps to 504 via httpStatusOf; everything else a
		// local hash rejects is input-shaped (unknown taxon, variant
		// mismatch, malformed topology) — the client's fault.
		return nil, &StatusError{Status: httpStatusOf(err, http.StatusBadRequest), Err: err}
	}
	return &Answer{Results: results, Coverage: 1, Epoch: p.epoch.N}, nil
}

// Stats implements Backend.
func (b *Local) Stats() CollectionStats {
	p := b.acquire()
	defer b.release(p)
	h := p.epoch.Hash
	return CollectionStats{
		Kind:        "local",
		Epoch:       p.epoch.N,
		Trees:       h.NumTrees(),
		Taxa:        h.Taxa().Len(),
		Fingerprint: fmt.Sprintf("%016x", h.Fingerprint()),
	}
}

// Close releases the current pin (in-flight queries holding references
// keep the epoch alive until they finish).
func (b *Local) Close() {
	b.mu.Lock()
	cur := b.cur
	cur.retired = true
	drop := cur.refs == 0
	b.mu.Unlock()
	if drop {
		cur.epoch.Release()
	}
}

// Distributed serves a collection sharded across a coordinator's
// workers. The request context's deadline propagates into every scatter
// RPC; a deadline expiry surfaces as 504 without declaring workers dead.
type Distributed struct {
	// Coord is the loaded coordinator (Load or LoadSnapshot completed).
	Coord *distrib.Coordinator
	// Epoch is the snapshot epoch the cluster was restored from (0 when
	// the shards were built from reference files).
	Epoch int
}

// Query implements Backend by scatter-gathering over the worker shards.
func (d *Distributed) Query(ctx context.Context, trees []*tree.Tree, v core.Variant) (*Answer, error) {
	if v != core.Plain {
		return nil, &StatusError{
			Status: http.StatusBadRequest,
			Err:    fmt.Errorf("serve: distributed collections answer only the plain variant (got %q)", v),
		}
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	out, err := d.Coord.AverageRFOpts(ctx, collection.FromTrees(trees), distrib.QueryRunOptions{Cancel: cancel})
	if err != nil {
		// Worker-side failures that survived retry and failover are an
		// upstream problem: 502, so clients can tell "my tree is bad"
		// (400) from "the cluster is hurting".
		return nil, &StatusError{Status: httpStatusOf(err, http.StatusBadGateway), Err: err}
	}
	return &Answer{Results: out.Results, Coverage: out.Coverage, Epoch: d.Epoch}, nil
}

// Stats implements Backend.
func (d *Distributed) Stats() CollectionStats {
	return CollectionStats{
		Kind:        "distributed",
		Epoch:       d.Epoch,
		Trees:       d.Coord.RefTrees(),
		Taxa:        d.Coord.TaxaLen(),
		Fingerprint: fmt.Sprintf("%016x", d.Coord.Fingerprint()),
	}
}

// Close implements Backend. The coordinator's connections are owned by
// the caller (it may outlive the catalog), so this is a no-op.
func (d *Distributed) Close() {}

// Catalog is the named-collection registry. All methods are safe for
// concurrent use.
type Catalog struct {
	// Root, when non-empty, lets a register call name a collection
	// without a directory: the store is opened at Root/<name>. Names are
	// validated by ValidName, which forbids separators and a leading
	// dot, so a hostile name cannot escape Root.
	Root string
	// Workers bounds per-query compute parallelism of local backends.
	Workers int

	mu   sync.RWMutex
	cols map[string]Backend
}

// NewCatalog returns an empty catalog.
func NewCatalog(root string, workers int) *Catalog {
	return &Catalog{Root: root, Workers: workers, cols: make(map[string]Backend)}
}

// Register installs backend under name, replacing (and closing) any
// previous entry with that name.
func (c *Catalog) Register(name string, b Backend) error {
	if !ValidName(name) {
		return fmt.Errorf("serve: invalid collection name %q", name)
	}
	c.mu.Lock()
	old := c.cols[name]
	c.cols[name] = b
	n := len(c.cols)
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	collectionsGauge().Set(float64(n))
	return nil
}

// OpenDir opens dir as a local snapshot store and registers it under
// name. If name is already registered to a Local backend, it is
// refreshed onto the store's current epoch instead (the admin-API path
// for "a delta was published, start serving it"). An empty dir resolves
// against Root.
func (c *Catalog) OpenDir(name, dir string) (CollectionStats, error) {
	if !ValidName(name) {
		return CollectionStats{}, fmt.Errorf("serve: invalid collection name %q", name)
	}
	if dir == "" {
		if c.Root == "" {
			return CollectionStats{}, fmt.Errorf("serve: collection %q names no directory and the catalog has no -collections-root", name)
		}
		dir = filepath.Join(c.Root, name)
	}
	c.mu.RLock()
	existing, ok := c.cols[name].(*Local)
	c.mu.RUnlock()
	if ok {
		if _, err := existing.Refresh(); err != nil {
			return CollectionStats{}, err
		}
		st := existing.Stats()
		st.Name = name
		return st, nil
	}
	b, err := OpenLocal(dir, c.Workers)
	if err != nil {
		return CollectionStats{}, err
	}
	if err := c.Register(name, b); err != nil {
		b.Close()
		return CollectionStats{}, err
	}
	st := b.Stats()
	st.Name = name
	return st, nil
}

// Get returns the backend for name.
func (c *Catalog) Get(name string) (Backend, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.cols[name]
	return b, ok
}

// List describes every collection, sorted by name.
func (c *Catalog) List() []CollectionStats {
	c.mu.RLock()
	names := make([]string, 0, len(c.cols))
	for name := range c.cols {
		names = append(names, name)
	}
	backends := make([]Backend, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		backends = append(backends, c.cols[name])
	}
	c.mu.RUnlock()
	out := make([]CollectionStats, len(names))
	for i, b := range backends {
		out[i] = b.Stats()
		out[i].Name = names[i]
	}
	return out
}

// Close closes every backend.
func (c *Catalog) Close() {
	c.mu.Lock()
	cols := c.cols
	c.cols = make(map[string]Backend)
	c.mu.Unlock()
	for _, b := range cols {
		b.Close()
	}
	collectionsGauge().Set(0)
}

// Manifest is the JSON shape of a -collections file: the catalog to
// serve, loaded at startup.
type Manifest struct {
	// Collections lists the local snapshot stores to register.
	Collections []ManifestEntry `json:"collections"`
}

// ManifestEntry names one snapshot store.
type ManifestEntry struct {
	// Name is the catalog key clients query by.
	Name string `json:"name"`
	// Dir is the bfhsnap store directory ("" resolves against the
	// catalog root).
	Dir string `json:"dir"`
}

// LoadManifest registers every collection in the JSON manifest at path.
// Relative Dir values resolve against the manifest's own directory.
func (c *Catalog) LoadManifest(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("serve: manifest %s: %w", path, err)
	}
	if len(m.Collections) == 0 {
		return fmt.Errorf("serve: manifest %s lists no collections", path)
	}
	base := filepath.Dir(path)
	for _, e := range m.Collections {
		dir := e.Dir
		if dir != "" && !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if _, err := c.OpenDir(e.Name, dir); err != nil {
			return fmt.Errorf("serve: manifest %s: collection %q: %w", path, e.Name, err)
		}
	}
	return nil
}
