package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bfhsnap"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// testTrees generates a deterministic random collection.
func testTrees(seed int64, n, r int) ([]*tree.Tree, *taxa.Set) {
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(seed))
	trees := make([]*tree.Tree, r)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	return trees, ts
}

// buildHash folds trees into a FreqHash.
func buildHash(t *testing.T, trees []*tree.Tree, ts *taxa.Set) *core.FreqHash {
	t.Helper()
	h, err := core.Build(collection.FromTrees(trees), ts, core.BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// newStore saves trees as epoch 1 of a fresh snapshot store and returns
// its directory.
func newStore(t *testing.T, trees []*tree.Tree, ts *taxa.Set) string {
	t.Helper()
	dir := t.TempDir()
	st, err := bfhsnap.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveEpoch(buildHash(t, trees, ts)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// newwickStrings renders trees for a query body.
func newickStrings(trees []*tree.Tree) []string {
	out := make([]string, len(trees))
	for i, tr := range trees {
		out[i] = newick.String(tr, newick.DefaultWriteOptions())
	}
	return out
}

// testService builds a service over one local collection named "refs"
// and returns it with its test server.
func testService(t *testing.T, cfg Config, trees []*tree.Tree, ts *taxa.Set) (*Service, *httptest.Server) {
	t.Helper()
	cat := NewCatalog("", 0)
	t.Cleanup(cat.Close)
	b, err := OpenLocal(newStore(t, trees, ts), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("refs", b); err != nil {
		t.Fatal(err)
	}
	svc := New(cfg, cat)
	mux := http.NewServeMux()
	svc.Register(mux)
	mux.HandleFunc("/healthz", svc.WrapHealthz(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	}))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return svc, srv
}

// postQuery sends one /v1/query request and returns status, body and
// headers.
func postQuery(t *testing.T, url string, tenant string, body any) (int, []byte, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/query", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func TestQueryMatchesDirectAverageRF(t *testing.T) {
	trees, ts := testTrees(1, 16, 12)
	queries, _ := testTrees(2, 16, 5)
	// Regenerate queries on the same taxa set so labels match.
	rng := rand.New(rand.NewSource(2))
	for i := range queries {
		queries[i] = simphy.RandomBinary(ts, rng)
	}
	_, srv := testService(t, Config{}, trees, ts)

	for _, variant := range []string{"", "plain", "normalized", "weighted"} {
		code, body, _ := postQuery(t, srv.URL, "", map[string]any{
			"collection": "refs",
			"variant":    variant,
			"trees":      newickStrings(queries),
		})
		if code != 200 {
			t.Fatalf("variant %q: status %d: %s", variant, code, body)
		}
		var resp struct {
			Collection string  `json:"collection"`
			Epoch      int     `json:"epoch"`
			Variant    string  `json:"variant"`
			Coverage   float64 `json:"coverage"`
			Results    []struct {
				Index int     `json:"index"`
				AvgRF float64 `json:"avg_rf"`
			} `json:"results"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("variant %q: %v", variant, err)
		}
		if resp.Coverage != 1 || resp.Epoch != 1 || resp.Collection != "refs" {
			t.Fatalf("variant %q: resp meta = %+v", variant, resp)
		}
		v := core.Plain
		switch variant {
		case "normalized":
			v = core.Normalized
		case "weighted":
			v = core.Weighted
		}
		h := buildHash(t, trees, ts)
		want, err := h.AverageRF(collection.FromTrees(queries), core.QueryOptions{Workers: 1, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(want) {
			t.Fatalf("variant %q: %d results, want %d", variant, len(resp.Results), len(want))
		}
		for i, w := range want {
			got := resp.Results[i]
			if got.Index != w.Index || got.AvgRF != w.AvgRF {
				t.Errorf("variant %q result %d: got (%d, %v), want (%d, %v)",
					variant, i, got.Index, got.AvgRF, w.Index, w.AvgRF)
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	trees, ts := testTrees(3, 8, 4)
	_, srv := testService(t, Config{MaxTrees: 2}, trees, ts)
	q := newickStrings(trees[:1])

	cases := []struct {
		name   string
		tenant string
		body   any
		want   int
	}{
		{"unknown collection", "", map[string]any{"collection": "nope", "trees": q}, 404},
		{"path-escape collection", "", map[string]any{"collection": "../refs", "trees": q}, 400},
		{"empty collection", "", map[string]any{"trees": q}, 400},
		{"bad tenant", "a/b", map[string]any{"collection": "refs", "trees": q}, 400},
		{"long tenant", strings.Repeat("x", 65), map[string]any{"collection": "refs", "trees": q}, 400},
		{"no trees", "", map[string]any{"collection": "refs"}, 400},
		{"too many trees", "", map[string]any{"collection": "refs", "trees": newickStrings(trees[:3])}, 413},
		{"malformed json", "", `{"collection": refs`, 400},
		{"malformed newick", "", map[string]any{"collection": "refs", "trees": []string{"((a,b"}}, 400},
		{"unknown variant", "", map[string]any{"collection": "refs", "variant": "rooted", "trees": q}, 400},
	}
	for _, c := range cases {
		code, body, _ := postQuery(t, srv.URL, c.tenant, c.body)
		if code != c.want {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, code, c.want, body)
		}
	}

	// GET is not allowed.
	resp, err := http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /v1/query: status %d, want 405", resp.StatusCode)
	}
}

func TestQueryBodyTooLarge(t *testing.T) {
	trees, ts := testTrees(4, 8, 4)
	_, srv := testService(t, Config{MaxBodyBytes: 256}, trees, ts)
	big := map[string]any{"collection": "refs", "trees": []string{strings.Repeat("x", 1024)}}
	code, body, _ := postQuery(t, srv.URL, "", big)
	if code != 413 {
		t.Fatalf("oversized body: status %d, want 413 (body %s)", code, body)
	}
}

func TestQueryDeadline(t *testing.T) {
	trees, ts := testTrees(5, 8, 4)
	_, srv := testService(t, Config{DefaultDeadline: 30 * time.Millisecond}, trees, ts)
	// A backend that never answers within the deadline.
	svcMux := http.NewServeMux()
	cat := NewCatalog("", 0)
	defer cat.Close()
	if err := cat.Register("slow", stallBackend{}); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{DefaultDeadline: 30 * time.Millisecond}, cat)
	svc.Register(svcMux)
	slow := httptest.NewServer(svcMux)
	defer slow.Close()

	code, body, _ := postQuery(t, slow.URL, "", map[string]any{
		"collection": "slow", "trees": newickStrings(trees[:1]),
	})
	if code != 504 {
		t.Fatalf("stalled backend: status %d, want 504 (body %s)", code, body)
	}
	_ = srv
}

// stallBackend blocks until the request context expires.
type stallBackend struct{}

func (stallBackend) Query(ctx context.Context, _ []*tree.Tree, _ core.Variant) (*Answer, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (stallBackend) Stats() CollectionStats { return CollectionStats{Kind: "stall"} }
func (stallBackend) Close()                 {}

func TestCollectionsListAndRegister(t *testing.T) {
	trees, ts := testTrees(6, 12, 8)
	_, srv := testService(t, Config{}, trees, ts)

	resp, err := http.Get(srv.URL + "/v1/collections")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list []CollectionStats
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "refs" || list[0].Kind != "local" ||
		list[0].Trees != 8 || list[0].Taxa != 12 || list[0].Epoch != 1 {
		t.Fatalf("list = %+v", list)
	}

	// Register a second store over the admin API.
	more, ts2 := testTrees(7, 10, 6)
	dir := newStore(t, more, ts2)
	body, _ := json.Marshal(map[string]string{"name": "more", "dir": dir})
	resp, err = http.Post(srv.URL+"/v1/collections", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}
	var st CollectionStats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "more" || st.Trees != 6 {
		t.Fatalf("registered stats = %+v", st)
	}

	// Invalid names are rejected at the boundary.
	for _, name := range []string{"../evil", "a/b", "", strings.Repeat("q", 65)} {
		body, _ := json.Marshal(map[string]string{"name": name, "dir": dir})
		resp, err := http.Post(srv.URL+"/v1/collections", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("register %q: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestRefreshNeverTearsInflightQueries publishes new epochs while
// queries run and checks every answer is internally consistent with the
// epoch that served it.
func TestRefreshNeverTearsInflightQueries(t *testing.T) {
	trees1, ts := testTrees(8, 14, 10)
	rng := rand.New(rand.NewSource(9))
	trees2 := make([]*tree.Tree, 7)
	for i := range trees2 {
		trees2[i] = simphy.RandomBinary(ts, rng)
	}
	queries := make([]*tree.Tree, 3)
	for i := range queries {
		queries[i] = simphy.RandomBinary(ts, rng)
	}

	dir := newStore(t, trees1, ts)
	st, err := bfhsnap.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenLocal(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Expected vectors per epoch.
	want := map[int][]core.Result{}
	for n, set := range map[int][]*tree.Tree{1: trees1, 2: trees2} {
		h := buildHash(t, set, ts)
		res, err := h.AverageRF(collection.FromTrees(queries), core.QueryOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[n] = res
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := b.Query(context.Background(), queries, core.Plain)
				if err != nil {
					errc <- err
					return
				}
				exp, ok := want[ans.Epoch]
				if !ok {
					errc <- fmt.Errorf("answer from unexpected epoch %d", ans.Epoch)
					return
				}
				for i, r := range ans.Results {
					if r.AvgRF != exp[i].AvgRF {
						errc <- fmt.Errorf("epoch %d result %d: got %v, want %v (torn read?)",
							ans.Epoch, i, r.AvgRF, exp[i].AvgRF)
						return
					}
				}
			}
		}()
	}
	// Publish epoch 2 and refresh mid-flight.
	if _, err := st.SaveEpoch(buildHash(t, trees2, ts)); err != nil {
		t.Fatal(err)
	}
	if n, err := b.Refresh(); err != nil || n != 2 {
		t.Fatalf("Refresh() = (%d, %v), want (2, nil)", n, err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// After refresh, new queries answer from epoch 2.
	ans, err := b.Query(context.Background(), queries, core.Plain)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Epoch != 2 {
		t.Fatalf("post-refresh epoch = %d, want 2", ans.Epoch)
	}
}

func TestDrainShedsAndHealthzFlips(t *testing.T) {
	trees, ts := testTrees(10, 8, 4)
	svc, srv := testService(t, Config{}, trees, ts)

	// Healthy first.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	if !svc.Drain(time.Second) {
		t.Fatal("Drain timed out with no requests in flight")
	}
	// Draining is idempotent.
	if !svc.Drain(time.Second) {
		t.Fatal("second Drain timed out")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !strings.Contains(string(data), "draining") {
		t.Fatalf("healthz during drain: %d %s", resp.StatusCode, data)
	}

	code, _, hdr := postQuery(t, srv.URL, "", map[string]any{
		"collection": "refs", "trees": newickStrings(trees[:1]),
	})
	if code != 503 {
		t.Fatalf("query during drain: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("drain shed carries no Retry-After")
	}
}

func TestLoadManifest(t *testing.T) {
	trees, ts := testTrees(11, 8, 5)
	dir := newStore(t, trees, ts)
	manifest := t.TempDir() + "/catalog.json"
	data, _ := json.Marshal(Manifest{Collections: []ManifestEntry{{Name: "m1", Dir: dir}}})
	if err := writeFile(manifest, data); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog("", 0)
	defer cat.Close()
	if err := cat.LoadManifest(manifest); err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Get("m1"); !ok {
		t.Fatal("manifest collection not registered")
	}
	// A manifest with an invalid name fails loudly.
	bad, _ := json.Marshal(Manifest{Collections: []ManifestEntry{{Name: "../x", Dir: dir}}})
	if err := writeFile(manifest, bad); err != nil {
		t.Fatal(err)
	}
	cat2 := NewCatalog("", 0)
	defer cat2.Close()
	if err := cat2.LoadManifest(manifest); err == nil {
		t.Fatal("manifest with path-escaping name loaded")
	}
}

// writeFile writes a test fixture.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
