package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tree"
)

// slowBackend wraps a Backend, sleeping before each query and tracking
// the maximum observed concurrency — the instrument that proves the
// admission layer's execution bound holds under load.
type slowBackend struct {
	inner Backend
	delay time.Duration
	cur   atomic.Int64
	max   atomic.Int64
}

func (s *slowBackend) Query(ctx context.Context, trees []*tree.Tree, v core.Variant) (*Answer, error) {
	n := s.cur.Add(1)
	for {
		m := s.max.Load()
		if n <= m || s.max.CompareAndSwap(m, n) {
			break
		}
	}
	defer s.cur.Add(-1)
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.inner.Query(ctx, trees, v)
}

func (s *slowBackend) Stats() CollectionStats { return s.inner.Stats() }
func (s *slowBackend) Close()                 { s.inner.Close() }

// hammerClient posts one query body and classifies the response.
type hammerResult struct {
	status     int
	body       []byte
	retryAfter string
}

func hammer(t *testing.T, client *http.Client, url string, body []byte) hammerResult {
	t.Helper()
	resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Errorf("hammer request: %v", err)
		return hammerResult{}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("hammer read: %v", err)
	}
	return hammerResult{status: resp.StatusCode, body: data, retryAfter: resp.Header.Get("Retry-After")}
}

// TestOverloadHammer floods a service whose queue capacity is tiny with
// 10x as many concurrent requests and asserts graceful degradation:
// exact shed accounting, Retry-After on every rejection, the execution
// bound respected, accepted responses byte-identical to an unloaded
// baseline, and goroutines back to baseline afterwards.
func TestOverloadHammer(t *testing.T) {
	const (
		maxInflight = 2
		queueDepth  = 4
		distinct    = 6
	)
	capacity := maxInflight + queueDepth
	total := 10 * capacity

	trees, ts := testTrees(20, 14, 10)
	local, err := OpenLocal(newStore(t, trees, ts), 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowBackend{inner: local, delay: 2 * time.Millisecond}
	cat := NewCatalog("", 0)
	t.Cleanup(cat.Close)
	if err := cat.Register("refs", slow); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Admission: AdmissionConfig{MaxInflight: maxInflight, QueueDepth: queueDepth}}, cat)
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	// Distinct payloads, one per request slot modulo `distinct`.
	payloads := make([][]byte, distinct)
	for i := range payloads {
		qs, _ := testTrees(int64(100+i), 14, 2)
		// Rebuild on the shared taxa set so the queries are answerable.
		for j := range qs {
			qs[j] = trees[(i+j)%len(trees)]
		}
		body, err := json.Marshal(map[string]any{"collection": "refs", "trees": newickStrings(qs)})
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = body
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: total}}
	t.Cleanup(client.CloseIdleConnections)

	// Unloaded baseline, sequential: the byte-exact answers.
	baseline := make([][]byte, distinct)
	for i, p := range payloads {
		r := hammer(t, client, srv.URL, p)
		if r.status != 200 {
			t.Fatalf("baseline %d: status %d: %s", i, r.status, r.body)
		}
		baseline[i] = r.body
	}

	client.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	goroutinesBefore := runtime.NumGoroutine()

	shedBefore := requestsShed(shedQueueFull).Value() + requestsShed(shedRate).Value()
	results := make([]hammerResult, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = hammer(t, client, srv.URL, payloads[i%distinct])
		}(i)
	}
	wg.Wait()

	var accepted, shed int
	for i, r := range results {
		switch r.status {
		case 200:
			accepted++
			if !bytes.Equal(r.body, baseline[i%distinct]) {
				t.Errorf("request %d: accepted body differs from unloaded baseline:\n got %s\nwant %s",
					i, r.body, baseline[i%distinct])
			}
		case 429, 503:
			shed++
			if r.retryAfter == "" {
				t.Errorf("request %d: shed %d without Retry-After", i, r.status)
			}
		default:
			t.Errorf("request %d: unexpected status %d: %s", i, r.status, r.body)
		}
	}
	if accepted+shed != total {
		t.Fatalf("accounting: accepted %d + shed %d != sent %d", accepted, shed, total)
	}
	if shed == 0 {
		t.Fatalf("10x overload produced no sheds (accepted all %d)", total)
	}
	if accepted == 0 {
		t.Fatal("overload starved every request; some must be served")
	}
	shedMetric := requestsShed(shedQueueFull).Value() + requestsShed(shedRate).Value() - shedBefore
	if shedMetric != uint64(shed) {
		t.Errorf("bfhrf_requests_shed_total grew by %d, HTTP saw %d sheds", shedMetric, shed)
	}
	if m := slow.max.Load(); m > maxInflight {
		t.Errorf("backend concurrency reached %d, execution bound is %d", m, maxInflight)
	}

	// The burst must not leak goroutines.
	client.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore+5 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore+5 {
		t.Errorf("goroutines grew from %d to %d after the burst", goroutinesBefore, g)
	}

	// After the burst the service is healthy again: a fresh query answers
	// correctly and the queue gauge is back to zero.
	r := hammer(t, client, srv.URL, payloads[0])
	if r.status != 200 || !bytes.Equal(r.body, baseline[0]) {
		t.Fatalf("post-burst query: status %d body %s", r.status, r.body)
	}
	if d := queueDepthGauge().Value(); d != 0 {
		t.Errorf("queue depth gauge stuck at %v after the burst", d)
	}
}

// TestTenantRateLimitOverHTTP checks the 429 path end to end, including
// per-tenant isolation.
func TestTenantRateLimitOverHTTP(t *testing.T) {
	trees, ts := testTrees(21, 8, 4)
	_, srv := testService(t, Config{
		Admission: AdmissionConfig{MaxInflight: 4, QueueDepth: 4, TenantRate: 0.0001, TenantBurst: 1},
	}, trees, ts)
	body := map[string]any{"collection": "refs", "trees": newickStrings(trees[:1])}

	code, _, _ := postQuery(t, srv.URL, "alice", body)
	if code != 200 {
		t.Fatalf("alice's first request: status %d", code)
	}
	code, data, hdr := postQuery(t, srv.URL, "alice", body)
	if code != 429 {
		t.Fatalf("alice's second request: status %d (%s), want 429", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// bob has his own bucket.
	if code, _, _ := postQuery(t, srv.URL, "bob", body); code != 200 {
		t.Fatalf("bob's first request: status %d", code)
	}
}

// TestDrainMidBurst drains the service while requests are in flight:
// every admitted query completes with a correct answer, later arrivals
// shed with "draining", and Drain returns once the last one finishes.
func TestDrainMidBurst(t *testing.T) {
	trees, ts := testTrees(22, 12, 8)
	local, err := OpenLocal(newStore(t, trees, ts), 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowBackend{inner: local, delay: 30 * time.Millisecond}
	cat := NewCatalog("", 0)
	t.Cleanup(cat.Close)
	if err := cat.Register("refs", slow); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Admission: AdmissionConfig{MaxInflight: 2, QueueDepth: 8}}, cat)
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(map[string]any{"collection": "refs", "trees": newickStrings(trees[:2])})
	baseline := hammer(t, &http.Client{}, srv.URL, body)
	if baseline.status != 200 {
		t.Fatalf("baseline: %d %s", baseline.status, baseline.body)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	t.Cleanup(client.CloseIdleConnections)
	const n = 8
	results := make([]hammerResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = hammer(t, client, srv.URL, body)
		}(i)
	}
	// Let some requests get admitted, then drain.
	time.Sleep(10 * time.Millisecond)
	if !svc.Drain(5 * time.Second) {
		t.Fatal("Drain timed out with slow queries in flight")
	}
	wg.Wait()

	var ok200, shed int
	for i, r := range results {
		switch r.status {
		case 200:
			ok200++
			if !bytes.Equal(r.body, baseline.body) {
				t.Errorf("request %d: drained answer differs from baseline", i)
			}
		case 503:
			shed++
		default:
			t.Errorf("request %d: unexpected status %d", i, r.status)
		}
	}
	if ok200+shed != n {
		t.Fatalf("accounting: %d ok + %d shed != %d", ok200, shed, n)
	}
	if ok200 == 0 {
		t.Fatal("drain killed every in-flight request; admitted queries must finish")
	}

	// Post-drain arrivals shed with the draining reason.
	r := hammer(t, client, srv.URL, body)
	if r.status != 503 || r.retryAfter == "" {
		t.Fatalf("post-drain request: status %d retryAfter %q, want 503 with Retry-After", r.status, r.retryAfter)
	}
	if got := fmt.Sprintf("%s", r.body); !bytes.Contains(r.body, []byte(shedDraining)) {
		t.Errorf("post-drain body %q does not mention %q", got, shedDraining)
	}
}
