// Package serve turns a bfhrfd process into a long-lived, multi-tenant
// query service: a catalog of named, versioned reference collections
// (each a pinned bfhsnap epoch served in-process, or the shards behind a
// distrib coordinator), an HTTP/JSON query API mounted on the admin
// listener, and an admission layer — bounded queue, concurrency
// limiter, per-tenant token buckets — that sheds overload in O(1) with
// 429/503 + Retry-After instead of queueing or parsing its way to an
// OOM. SIGTERM drains gracefully: admission stops, /healthz reports
// "draining", in-flight queries finish, then the process exits. See
// "Serving queries over HTTP" in README.md and "Admission and overload"
// in ARCHITECTURE.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/tree"
)

// Config sizes one Service. The zero value applies the documented
// defaults.
type Config struct {
	// Admission sizes the front door.
	Admission AdmissionConfig
	// MaxBodyBytes caps a request body (default 1 MiB). Larger bodies
	// get 413 before the surplus is read.
	MaxBodyBytes int64
	// MaxTrees caps query trees per request (default 1024).
	MaxTrees int
	// DefaultDeadline bounds each admitted request end to end, waiting
	// included; it propagates into the scatter RPCs of distributed
	// collections (default 30s).
	DefaultDeadline time.Duration
	// Limits harden per-tree parsing (0 = unlimited, matching ingest).
	Limits newick.Limits
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

func (c Config) maxTrees() int {
	if c.MaxTrees > 0 {
		return c.MaxTrees
	}
	return 1024
}

func (c Config) deadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return 30 * time.Second
}

// Service is the HTTP query service: catalog + admission + drain state.
type Service struct {
	cfg Config
	cat *Catalog
	adm *Admission

	// mu guards the drain handshake: begin() refuses new work once
	// draining is set, and Drain waits for active to hit zero.
	mu       sync.Mutex
	draining bool
	active   sync.WaitGroup
}

// New builds a Service over catalog cat.
func New(cfg Config, cat *Catalog) *Service {
	return &Service{cfg: cfg, cat: cat, adm: NewAdmission(cfg.Admission)}
}

// Catalog returns the serving catalog.
func (s *Service) Catalog() *Catalog { return s.cat }

// Admission returns the admission layer (tests size their bursts off
// its capacity).
func (s *Service) Admission() *Admission { return s.adm }

// Register mounts the service's routes on mux.
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/collections", s.handleCollections)
}

// begin registers one unit of in-flight work unless the service is
// draining. Every true return must be paired with one end().
func (s *Service) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active.Add(1)
	return true
}

// end retires one unit of in-flight work.
func (s *Service) end() { s.active.Done() }

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission (every subsequent request is shed with 503
// "draining") and waits up to timeout for in-flight requests to finish.
// It returns true when the service drained cleanly, false on timeout
// with work still in flight. Idempotent.
func (s *Service) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// WrapHealthz layers the drain state over a mode-specific health
// handler: while draining, /healthz answers 503 {"status":"draining"}
// so load balancers stop routing before the listener goes away.
func (s *Service) WrapHealthz(inner http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"status":"draining"}`+"\n")
			return
		}
		inner(w, r)
	}
}

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Collection names the catalog entry to query.
	Collection string `json:"collection"`
	// Variant is plain (default) | normalized | weighted.
	Variant string `json:"variant"`
	// Trees are the Newick query trees.
	Trees []string `json:"trees"`
}

// queryResult is one tree's answer.
type queryResult struct {
	// Index is the tree's position in the request.
	Index int `json:"index"`
	// AvgRF is the average distance to the reference collection.
	AvgRF float64 `json:"avg_rf"`
}

// queryResponse is the POST /v1/query success body.
type queryResponse struct {
	// Collection echoes the queried catalog entry.
	Collection string `json:"collection"`
	// Epoch is the snapshot epoch that answered (0 if not epoch-backed).
	Epoch int `json:"epoch"`
	// Variant echoes the RF flavour served.
	Variant string `json:"variant"`
	// Coverage is the fraction of reference trees behind the answer.
	Coverage float64 `json:"coverage"`
	// Results are the per-tree averages, in request order.
	Results []queryResult `json:"results"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	// Error describes the failure.
	Error string `json:"error"`
}

// parseVariant maps the wire name to a core.Variant.
func parseVariant(s string) (core.Variant, error) {
	switch s {
	case "", "plain":
		return core.Plain, nil
	case "normalized":
		return core.Normalized, nil
	case "weighted":
		return core.Weighted, nil
	default:
		return 0, fmt.Errorf("serve: unknown variant %q (want plain, normalized or weighted)", s)
	}
}

// reply writes a JSON response and counts it in bfhrf_requests_total.
func reply(w http.ResponseWriter, code int, body any) {
	requestsTotal(code).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(body) //nolint:errcheck — a dead client is its own problem
}

// replyErr writes an error body.
func replyErr(w http.ResponseWriter, code int, format string, args ...any) {
	reply(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// shed rejects a request with Retry-After, counting the shed. This is
// the O(1) path: no body bytes have been read when it runs.
func shed(w http.ResponseWriter, sd *Shed) {
	requestsShed(sd.Reason).Inc()
	w.Header().Set("Retry-After", RetryAfterSeconds(sd.RetryAfter))
	replyErr(w, sd.Status, "overloaded: %s", sd.Reason)
}

// handleQuery serves POST /v1/query.
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		replyErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Order matters, cheapest first: drain gate, tenant validation, rate
	// limit, queue reservation — all before the first body byte.
	if !s.begin() {
		shed(w, &Shed{Status: 503, Reason: shedDraining, RetryAfter: time.Second})
		return
	}
	defer s.end()
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if !ValidName(tenant) {
		replyErr(w, http.StatusBadRequest, "invalid X-Tenant (want 1..%d chars of [A-Za-z0-9_.-], no leading . or -)", nameMaxLen)
		return
	}
	if err := faultinject.Hit(faultinject.PointServeAdmit); err != nil {
		shed(w, &Shed{Status: 503, Reason: shedFault, RetryAfter: time.Second})
		return
	}
	release, sd := s.adm.Admit(tenant)
	if sd != nil {
		shed(w, sd)
		return
	}
	defer release()
	start := time.Now()
	defer func() { requestDuration().Observe(time.Since(start).Seconds()) }()

	// The one place the per-request deadline is minted; it propagates
	// from here into local query cancellation and distributed scatter
	// RPCs alike.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.deadline())
	defer cancel()
	if err := s.adm.Acquire(ctx); err != nil {
		replyErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer s.adm.ReleaseExec()

	req, trees, code, err := s.decodeQuery(w, r)
	if err != nil {
		replyErr(w, code, "%v", err)
		return
	}
	v, err := parseVariant(req.Variant)
	if err != nil {
		replyErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend, ok := s.cat.Get(req.Collection)
	if !ok {
		replyErr(w, http.StatusNotFound, "unknown collection %q", req.Collection)
		return
	}
	if err := faultinject.Hit(faultinject.PointServeQuery); err != nil {
		replyErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	_, span := obs.StartSpan(ctx, "serve.query")
	if span.Recorded() {
		span.SetAttr("collection", req.Collection)
		span.SetAttr("tenant", tenant)
		span.SetAttr("trees", len(trees))
	}
	ans, err := backend.Query(ctx, trees, v)
	span.End()
	if err != nil {
		replyErr(w, httpStatusOf(err, http.StatusBadGateway), "%v", err)
		return
	}
	resp := queryResponse{
		Collection: req.Collection,
		Epoch:      ans.Epoch,
		Variant:    v.String(),
		Coverage:   ans.Coverage,
		Results:    make([]queryResult, len(ans.Results)),
	}
	for i, res := range ans.Results {
		resp.Results[i] = queryResult{Index: res.Index, AvgRF: res.AvgRF}
	}
	reply(w, http.StatusOK, resp)
}

// decodeQuery reads and validates the request body: size-capped JSON,
// then per-tree hardened Newick parsing. Returns the parsed request,
// the trees, and on failure the HTTP status to answer with.
func (s *Service) decodeQuery(w http.ResponseWriter, r *http.Request) (*queryRequest, []*tree.Tree, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	var req queryRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, nil, http.StatusBadRequest, fmt.Errorf("malformed JSON: %w", err)
	}
	if !ValidName(req.Collection) {
		return nil, nil, http.StatusBadRequest,
			fmt.Errorf("invalid collection name (want 1..%d chars of [A-Za-z0-9_.-], no leading . or -)", nameMaxLen)
	}
	if len(req.Trees) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("no query trees")
	}
	if len(req.Trees) > s.cfg.maxTrees() {
		return nil, nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d query trees exceeds the per-request cap of %d", len(req.Trees), s.cfg.maxTrees())
	}
	trees := make([]*tree.Tree, len(req.Trees))
	for i, nwk := range req.Trees {
		rd := newick.NewReader(strings.NewReader(nwk))
		rd.SetLimits(s.cfg.Limits)
		t, err := rd.Read()
		if err != nil {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("tree %d: %w", i, err)
		}
		trees[i] = t
	}
	return &req, trees, 0, nil
}

// collectionsRequest is the POST /v1/collections body: register (or
// refresh) a local snapshot store.
type collectionsRequest struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// Dir is the bfhsnap store directory ("" resolves against the
	// catalog root).
	Dir string `json:"dir"`
}

// handleCollections serves GET (list) and POST (register/refresh) on
// /v1/collections.
func (s *Service) handleCollections(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		reply(w, http.StatusOK, s.cat.List())
	case http.MethodPost:
		if !s.begin() {
			shed(w, &Shed{Status: 503, Reason: shedDraining, RetryAfter: time.Second})
			return
		}
		defer s.end()
		body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
		var req collectionsRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			replyErr(w, http.StatusBadRequest, "malformed JSON: %v", err)
			return
		}
		st, err := s.cat.OpenDir(req.Name, req.Dir)
		if err != nil {
			replyErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		reply(w, http.StatusOK, st)
	default:
		replyErr(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}
