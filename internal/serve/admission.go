package serve

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// The admission layer is the service's front door, built so that
// overload costs O(1) per rejected request: the tenant rate check and
// the queue-slot reservation happen before a single body byte is read
// or parsed, and a rejection allocates nothing that outlives the
// response. Capacity is two nested bounds — MaxInflight queries execute
// concurrently, and at most QueueDepth more may wait for a slot; a
// request beyond both is shed with 503 and Retry-After. Per-tenant
// token buckets (keyed on the validated X-Tenant header) shed
// over-rate tenants with 429 before they reach the shared queue.

// AdmissionConfig sizes the admission layer. The zero value applies the
// documented defaults.
type AdmissionConfig struct {
	// MaxInflight is the number of queries executing concurrently
	// (default GOMAXPROCS — for a distributed collection, size it to the
	// worker count times the per-worker parallelism you want).
	MaxInflight int
	// QueueDepth is how many admitted requests may wait for an execution
	// slot beyond MaxInflight (default 64). Queue-full requests are shed.
	QueueDepth int
	// TenantRate is each tenant's sustained request rate per second;
	// 0 disables per-tenant limiting.
	TenantRate float64
	// TenantBurst is the token-bucket capacity (default 2×TenantRate,
	// minimum 1).
	TenantBurst float64
	// MaxTenants bounds how many distinct tenants get their own bucket
	// and metric series (default 256); tenants beyond the cap share the
	// "_other" bucket, so hostile header churn cannot grow memory or
	// metric cardinality.
	MaxTenants int
}

func (c AdmissionConfig) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return runtime.GOMAXPROCS(0)
}

func (c AdmissionConfig) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c AdmissionConfig) maxTenants() int {
	if c.MaxTenants > 0 {
		return c.MaxTenants
	}
	return 256
}

func (c AdmissionConfig) tenantBurst() float64 {
	b := c.TenantBurst
	if b <= 0 {
		b = 2 * c.TenantRate
	}
	return math.Max(b, 1)
}

// Shed describes a load-shedding decision: the response the rejected
// request receives.
type Shed struct {
	// Status is 429 (over rate) or 503 (queue full / draining).
	Status int
	// Reason is the bfhrf_requests_shed_total label value.
	Reason string
	// RetryAfter is the client's suggested back-off.
	RetryAfter time.Duration
}

// Admission is the bounded work queue plus per-tenant rate limiter.
type Admission struct {
	cfg AdmissionConfig
	// slots is the total-admission bound: MaxInflight + QueueDepth
	// tokens. Acquired non-blocking — full means shed.
	slots chan struct{}
	// sem is the execution bound: MaxInflight tokens, acquired blocking
	// (bounded by the request deadline).
	sem chan struct{}
	tb  *tenantBuckets
}

// NewAdmission builds the admission layer for cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.maxInflight()+cfg.queueDepth()),
		sem:   make(chan struct{}, cfg.maxInflight()),
		// rate 0 never denies; the bucket map still bounds the per-tenant
		// metric label set.
		tb: newTenantBuckets(cfg.TenantRate, cfg.tenantBurst(), cfg.maxTenants()),
	}
}

// Capacity returns (concurrent executions, waiting slots).
func (a *Admission) Capacity() (inflight, queue int) {
	return cap(a.sem), cap(a.slots) - cap(a.sem)
}

// Admit runs the O(1) front-door checks for one request from tenant
// (already validated). On success it returns a release func that must be
// called exactly once when the request finishes; on rejection it
// returns the Shed verdict (and has already counted the shed).
func (a *Admission) Admit(tenant string) (release func(), shed *Shed) {
	ok, retry, label := a.tb.allow(tenant)
	tenantRequests(label).Inc()
	if !ok {
		return nil, &Shed{Status: 429, Reason: shedRate, RetryAfter: retry}
	}
	select {
	case a.slots <- struct{}{}:
	default:
		return nil, &Shed{Status: 503, Reason: shedQueueFull, RetryAfter: time.Second}
	}
	queueDepthGauge().Set(float64(a.queued()))
	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.slots
			queueDepthGauge().Set(float64(a.queued()))
		})
	}, nil
}

// queued is the number of admitted requests not yet executing (clamped
// at 0: slots and sem are read racily, which can transiently undercount).
func (a *Admission) queued() int {
	q := len(a.slots) - len(a.sem)
	if q < 0 {
		return 0
	}
	return q
}

// Acquire blocks until an execution slot is free or ctx expires.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
	default:
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case a.sem <- struct{}{}:
		case <-done:
			return fmt.Errorf("serve: timed out waiting for an execution slot: %w", ctx.Err())
		}
	}
	queueDepthGauge().Set(float64(a.queued()))
	inflightGauge().Set(float64(len(a.sem)))
	return nil
}

// ReleaseExec returns an execution slot.
func (a *Admission) ReleaseExec() {
	<-a.sem
	inflightGauge().Set(float64(len(a.sem)))
}

// tenantBuckets is a capped map of token buckets. rate 0 means buckets
// never deny (the map then only serves label bounding).
type tenantBuckets struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	max   int
	now   func() time.Time
	m     map[string]*bucket
	// other is the shared bucket for tenants beyond the cap.
	other bucket
}

// bucket is one tenant's token-bucket state.
type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantBuckets(rate, burst float64, max int) *tenantBuckets {
	return &tenantBuckets{
		rate:  rate,
		burst: burst,
		max:   max,
		now:   time.Now,
		m:     make(map[string]*bucket, 16),
		other: bucket{tokens: burst},
	}
}

// allow takes one token from tenant's bucket. It returns whether the
// request may proceed, how long until a token is available when not,
// and the bounded metric label for this tenant.
func (t *tenantBuckets) allow(tenant string) (ok bool, retry time.Duration, label string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, tracked := t.m[tenant]
	label = tenant
	switch {
	case tracked:
	case len(t.m) < t.max:
		b = &bucket{tokens: t.burst, last: t.now()}
		t.m[tenant] = b
	default:
		b = &t.other
		label = tenantOther
	}
	if t.rate <= 0 {
		return true, 0, label
	}
	now := t.now()
	if !b.last.IsZero() {
		b.tokens = math.Min(t.burst, b.tokens+now.Sub(b.last).Seconds()*t.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0, label
	}
	need := (1 - b.tokens) / t.rate
	return false, time.Duration(need * float64(time.Second)), label
}

// RetryAfterSeconds renders d as a Retry-After header value: whole
// seconds, rounded up, at least 1.
func RetryAfterSeconds(d time.Duration) string {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// nameMaxLen bounds tenant and collection names.
const nameMaxLen = 64

// ValidName reports whether s is a safe tenant or collection name:
// 1..64 bytes of [A-Za-z0-9_.-], not starting with '.' or '-'. The
// charset has no path separators and the leading-dot rule forbids "."
// and "..", so a valid name can never traverse out of a catalog root,
// and it is a legal Prometheus label value, so hostile headers cannot
// corrupt the metrics exposition.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > nameMaxLen {
		return false
	}
	if s[0] == '.' || s[0] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '_' || c == '.' || c == '-':
		default:
			return false
		}
	}
	return true
}
