package serve

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Chaos coverage for the admission fault points: an injected admission
// fault sheds cleanly (O(1), Retry-After, counted), an injected backend
// fault surfaces as a clean 502, and an injected delay that outlives the
// request deadline surfaces as 504 — never a hang, never a torn
// response.

func TestChaosAdmitFaultSheds(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts := testTrees(30, 8, 4)
	_, srv := testService(t, Config{}, trees, ts)
	body := map[string]any{"collection": "refs", "trees": newickStrings(trees[:1])}

	faultinject.Arm(faultinject.Plan{Point: faultinject.PointServeAdmit, Kind: faultinject.KindError, Hit: 1})
	before := requestsShed(shedFault).Value()
	code, data, hdr := postQuery(t, srv.URL, "", body)
	if code != 503 {
		t.Fatalf("admit fault: status %d (%s), want 503", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("admit fault shed without Retry-After")
	}
	if got := requestsShed(shedFault).Value(); got != before+1 {
		t.Errorf("bfhrf_requests_shed_total{reason=%q} = %d, want %d", shedFault, got, before+1)
	}
	// The plan fired once; the service recovers immediately.
	faultinject.Disarm()
	if code, data, _ := postQuery(t, srv.URL, "", body); code != 200 {
		t.Fatalf("post-fault query: status %d (%s)", code, data)
	}
}

func TestChaosBackendFaultIsClean5xx(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts := testTrees(31, 8, 4)
	_, srv := testService(t, Config{}, trees, ts)
	body := map[string]any{"collection": "refs", "trees": newickStrings(trees[:1])}

	faultinject.Arm(faultinject.Plan{Point: faultinject.PointServeQuery, Kind: faultinject.KindError, Hit: 1})
	code, data, _ := postQuery(t, srv.URL, "", body)
	if code != 502 {
		t.Fatalf("backend fault: status %d (%s), want 502", code, data)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &errResp); err != nil || errResp.Error == "" {
		t.Fatalf("backend fault body is not a JSON error: %s (%v)", data, err)
	}
	faultinject.Disarm()
	if code, data, _ := postQuery(t, srv.URL, "", body); code != 200 {
		t.Fatalf("post-fault query: status %d (%s)", code, data)
	}
}

func TestChaosDelayBeyondDeadlineIs504(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts := testTrees(32, 8, 4)
	_, srv := testService(t, Config{DefaultDeadline: 25 * time.Millisecond}, trees, ts)
	body := map[string]any{"collection": "refs", "trees": newickStrings(trees[:1])}

	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointServeQuery, Kind: faultinject.KindDelay,
		Hit: 1, Delay: 100 * time.Millisecond,
	})
	start := time.Now()
	code, data, _ := postQuery(t, srv.URL, "", body)
	if code != 504 {
		t.Fatalf("delayed query: status %d (%s), want 504", code, data)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delayed query took %v — the deadline did not bound it", elapsed)
	}
}
