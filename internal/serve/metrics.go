package serve

import (
	"strconv"

	"repro/internal/obs"
)

// Admission instrumentation, published into the obs Default registry.
// Every label set here comes from a small closed set: HTTP status codes,
// the fixed shed-reason vocabulary, and tenant names that passed
// ValidName and the tenantBuckets tracking cap (overflow tenants fold
// into the "_other" series), so hostile traffic cannot grow the registry
// unboundedly.

const (
	// tenantOther is the shared metric label (and shared token bucket) for
	// tenants beyond the tracking cap — the cardinality overflow valve.
	tenantOther = "_other"
)

// Shed reasons — the closed vocabulary of bfhrf_requests_shed_total.
const (
	shedDraining  = "draining"
	shedRate      = "rate_limited"
	shedQueueFull = "queue_full"
	shedFault     = "fault_injected"
)

// requestsTotal counts finished HTTP requests on the query service, by
// status code.
func requestsTotal(code int) *obs.CounterMetric {
	return obs.Counter("bfhrf_requests_total",
		"HTTP requests answered by the query service, by status code.",
		obs.L("code", strconv.Itoa(code)))
}

// requestsShed counts requests rejected before any parsing work, by
// reason (draining, rate_limited, queue_full, fault_injected).
func requestsShed(reason string) *obs.CounterMetric {
	return obs.Counter("bfhrf_requests_shed_total",
		"Requests rejected in O(1) by the admission layer, by reason.",
		obs.L("reason", reason))
}

// queueDepthGauge exposes how many admitted requests are waiting for an
// execution slot right now.
func queueDepthGauge() *obs.GaugeMetric {
	return obs.Gauge("bfhrf_request_queue_depth",
		"Admitted query requests waiting for an execution slot.")
}

// inflightGauge exposes how many queries are executing right now.
func inflightGauge() *obs.GaugeMetric {
	return obs.Gauge("bfhrf_requests_inflight",
		"Query requests currently executing.")
}

// tenantRequests counts query requests per tenant (admitted and shed).
// The label value is the validated tenant name for tracked tenants and
// "_other" past the tracking cap, keeping cardinality bounded.
func tenantRequests(tenant string) *obs.CounterMetric {
	return obs.Counter("bfhrf_tenant_requests_total",
		"Query requests per tenant (tenants beyond the tracking cap fold into _other).",
		obs.L("tenant", tenant))
}

// requestDuration observes end-to-end handler latency for admitted
// requests (sheds are excluded: they are O(1) by construction and would
// drown the signal).
func requestDuration() *obs.HistogramMetric {
	return obs.Histogram("bfhrf_request_duration_seconds",
		"End-to-end latency of admitted /v1/query requests.",
		obs.DefLatencyBuckets)
}

// collectionsGauge exposes the number of collections in the catalog.
func collectionsGauge() *obs.GaugeMetric {
	return obs.Gauge("bfhrf_collections",
		"Reference collections registered in the serving catalog.")
}

// init pre-registers the families a fresh process should already expose,
// so an admin /metrics scrape is meaningful before the first request.
func init() {
	requestsTotal(200)
	for _, reason := range []string{shedDraining, shedRate, shedQueueFull} {
		requestsShed(reason)
	}
	queueDepthGauge()
	inflightGauge()
	requestDuration()
	collectionsGauge()
}
