package serve

import (
	"testing"

	"repro/internal/obs/obstest"
)

func TestMain(m *testing.M) { obstest.Main(m) }
