package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidName(t *testing.T) {
	valid := []string{
		"a", "default", "refs-2024", "A.b_c-9", strings.Repeat("x", 64),
	}
	for _, s := range valid {
		if !ValidName(s) {
			t.Errorf("ValidName(%q) = false, want true", s)
		}
	}
	invalid := []string{
		"", ".", "..", ".hidden", "-flag", "a/b", "a\\b", "a b",
		"a\x00b", "é", "a:b", strings.Repeat("x", 65), "../../etc/passwd",
	}
	for _, s := range invalid {
		if ValidName(s) {
			t.Errorf("ValidName(%q) = true, want false", s)
		}
	}
}

func TestTenantBucketsRateAndRetry(t *testing.T) {
	tb := newTenantBuckets(1, 2, 8) // 1 req/s, burst 2
	now := time.Unix(1000, 0)
	tb.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _, _ := tb.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry, _ := tb.allow("a")
	if ok {
		t.Fatal("third request within the burst window allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want in (0, 1s]", retry)
	}
	// A different tenant has its own bucket.
	if ok, _, _ := tb.allow("b"); !ok {
		t.Fatal("fresh tenant denied")
	}
	// Tokens refill with time.
	now = now.Add(1500 * time.Millisecond)
	if ok, _, _ := tb.allow("a"); !ok {
		t.Fatal("request after refill denied")
	}
}

func TestTenantBucketsCardinalityCap(t *testing.T) {
	tb := newTenantBuckets(1000, 1000, 3)
	names := []string{"t1", "t2", "t3", "t4", "t5"}
	for _, n := range names {
		_, _, label := tb.allow(n)
		switch n {
		case "t1", "t2", "t3":
			if label != n {
				t.Errorf("tracked tenant %q got label %q", n, label)
			}
		default:
			if label != tenantOther {
				t.Errorf("overflow tenant %q got label %q, want %q", n, label, tenantOther)
			}
		}
	}
	if len(tb.m) != 3 {
		t.Fatalf("bucket map grew to %d entries, cap is 3", len(tb.m))
	}
}

func TestTenantBucketsZeroRateNeverDenies(t *testing.T) {
	tb := newTenantBuckets(0, 1, 2)
	for i := 0; i < 100; i++ {
		if ok, _, _ := tb.allow("a"); !ok {
			t.Fatal("zero-rate bucket denied a request")
		}
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 2, QueueDepth: 3})
	ifl, q := a.Capacity()
	if ifl != 2 || q != 3 {
		t.Fatalf("Capacity() = (%d, %d), want (2, 3)", ifl, q)
	}
	var releases []func()
	for i := 0; i < 5; i++ {
		rel, sd := a.Admit("t")
		if sd != nil {
			t.Fatalf("request %d shed with capacity free: %+v", i, sd)
		}
		releases = append(releases, rel)
	}
	_, sd := a.Admit("t")
	if sd == nil {
		t.Fatal("request beyond MaxInflight+QueueDepth admitted")
	}
	if sd.Status != 503 || sd.Reason != shedQueueFull {
		t.Fatalf("shed = %+v, want 503/%s", sd, shedQueueFull)
	}
	releases[0]()
	releases[0]() // release is idempotent: double-call must not free two slots
	if rel, sd := a.Admit("t"); sd != nil {
		t.Fatalf("request after release shed: %+v", sd)
	} else {
		releases = append(releases, rel)
	}
	if _, sd := a.Admit("t"); sd == nil {
		t.Fatal("double release freed two slots")
	}
	for _, rel := range releases[1:] {
		rel()
	}
}

func TestAdmissionRateShed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 8, QueueDepth: 8, TenantRate: 0.001, TenantBurst: 1})
	rel, sd := a.Admit("x")
	if sd != nil {
		t.Fatalf("first request shed: %+v", sd)
	}
	rel()
	_, sd = a.Admit("x")
	if sd == nil {
		t.Fatal("over-rate request admitted")
	}
	if sd.Status != 429 || sd.Reason != shedRate || sd.RetryAfter <= 0 {
		t.Fatalf("shed = %+v, want 429/%s with positive RetryAfter", sd, shedRate)
	}
}

func TestAcquireRespectsContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, QueueDepth: 1})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := a.Acquire(ctx); err == nil {
		t.Fatal("second Acquire succeeded with the slot held")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Acquire did not respect the context deadline")
	}
	a.ReleaseExec()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	a.ReleaseExec()
}

// TestAdmissionConcurrentAccounting hammers Admit/release from many
// goroutines under -race and checks slot accounting stays exact.
func TestAdmissionConcurrentAccounting(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 4, QueueDepth: 4})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rel, sd := a.Admit("t")
				if sd == nil {
					rel()
				}
			}
		}()
	}
	wg.Wait()
	// Every admitted request released its slot: full capacity is free.
	var rels []func()
	for i := 0; i < 8; i++ {
		rel, sd := a.Admit("t")
		if sd != nil {
			t.Fatalf("slot %d leaked: %+v", i, sd)
		}
		rels = append(rels, rel)
	}
	for _, rel := range rels {
		rel()
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
