package tree

import (
	"fmt"
	"sort"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("x%03d", i)
	}
	return out
}

func TestCaterpillarShape(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 40} {
		tr := Caterpillar(names(n))
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.NumLeaves() != n {
			t.Fatalf("n=%d: leaves = %d", n, tr.NumLeaves())
		}
		if n >= 3 && !tr.IsBinaryUnrooted() {
			t.Errorf("n=%d: not binary", n)
		}
		if n >= 4 && tr.NumInternalEdges() != n-3 {
			t.Errorf("n=%d: internal edges = %d, want %d", n, tr.NumInternalEdges(), n-3)
		}
	}
}

func TestBalancedShape(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 16, 33} {
		tr := Balanced(names(n))
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.NumLeaves() != n {
			t.Fatalf("n=%d: leaves = %d", n, tr.NumLeaves())
		}
		if n >= 3 && !tr.IsBinaryUnrooted() {
			t.Errorf("n=%d: not binary", n)
		}
	}
}

func TestBalancedIsShallowerThanCaterpillar(t *testing.T) {
	n := 64
	depth := func(tr *Tree) int {
		max := 0
		var walk func(nd *Node, d int)
		walk = func(nd *Node, d int) {
			if d > max {
				max = d
			}
			for _, c := range nd.Children {
				walk(c, d+1)
			}
		}
		walk(tr.Root, 0)
		return max
	}
	cat := depth(Caterpillar(names(n)))
	bal := depth(Balanced(names(n)))
	if bal >= cat {
		t.Errorf("balanced depth %d should be < caterpillar depth %d", bal, cat)
	}
}

func TestConstructorsPreserveNames(t *testing.T) {
	want := names(10)
	for _, tr := range []*Tree{Caterpillar(names(10)), Balanced(names(10))} {
		got := tr.LeafNames()
		sort.Strings(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("leaf names differ at %d: %s vs %s", i, got[i], want[i])
			}
		}
	}
}

func TestConstructorsPanicOnTiny(t *testing.T) {
	for _, f := range []func(){
		func() { Caterpillar(names(1)) },
		func() { Balanced(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
