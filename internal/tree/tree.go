// Package tree implements the phylogenetic tree model shared by every
// engine in this repository.
//
// Trees are stored rooted (every node except the root has a parent) but the
// Robinson-Foulds machinery treats them with unrooted semantics: an unrooted
// binary tree on n taxa is stored as a rooted tree whose root has three
// children (the conventional "unrooted" serialization used by Dendropy and
// most Newick producers), and bipartitions are derived from edges, which is
// invariant under the choice of root.
package tree

import (
	"fmt"
)

// Node is one vertex of a tree. Leaves carry taxon names; internal nodes may
// carry support labels. Branch lengths annotate the edge to the parent.
type Node struct {
	// Name is the taxon name for leaves, or an optional internal label.
	Name string
	// Length is the length of the edge to the parent; meaningful only when
	// HasLength is true. Trees without branch lengths (structure-only, like
	// the paper's Insect data) have HasLength false on every node.
	Length    float64
	HasLength bool

	Parent   *Node
	Children []*Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AddChild appends c to n's children and sets c's parent.
func (n *Node) AddChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Degree returns the number of edges incident to n (children plus the
// parent edge if present).
func (n *Node) Degree() int {
	d := len(n.Children)
	if n.Parent != nil {
		d++
	}
	return d
}

// Tree is a rooted tree structure. The zero value is not useful; construct
// trees via New or the newick parser.
type Tree struct {
	Root *Node
}

// New returns a tree with the given root.
func New(root *Node) *Tree { return &Tree{Root: root} }

// Postorder visits every node in postorder (children before parents).
// The traversal is iterative, so arbitrarily deep (caterpillar) trees do not
// overflow the goroutine stack.
func (t *Tree) Postorder(visit func(*Node)) {
	if t.Root == nil {
		return
	}
	type frame struct {
		n     *Node
		child int
	}
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child < len(f.n.Children) {
			c := f.n.Children[f.child]
			f.child++
			stack = append(stack, frame{c, 0})
			continue
		}
		visit(f.n)
		stack = stack[:len(stack)-1]
	}
}

// Preorder visits every node in preorder (parents before children),
// iteratively.
func (t *Tree) Preorder(visit func(*Node)) {
	if t.Root == nil {
		return
	}
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(n)
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, n.Children[i])
		}
	}
}

// Leaves returns all leaf nodes in postorder (left-to-right) order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Postorder(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
		}
	})
	return out
}

// LeafNames returns the taxon names of all leaves in traversal order.
func (t *Tree) LeafNames() []string {
	leaves := t.Leaves()
	out := make([]string, len(leaves))
	for i, l := range leaves {
		out[i] = l.Name
	}
	return out
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int {
	c := 0
	t.Postorder(func(n *Node) {
		if n.IsLeaf() {
			c++
		}
	})
	return c
}

// NumNodes returns the total number of nodes.
func (t *Tree) NumNodes() int {
	c := 0
	t.Postorder(func(*Node) { c++ })
	return c
}

// NumInternalEdges returns the number of internal (non-pendant, non-root)
// edges — the edges that induce non-trivial bipartitions.
func (t *Tree) NumInternalEdges() int {
	c := 0
	t.Postorder(func(n *Node) {
		if n.Parent != nil && !n.IsLeaf() {
			c++
		}
	})
	return c
}

// IsBinaryUnrooted reports whether the tree is a binary unrooted tree in the
// conventional rooted serialization: the root has exactly 3 children (or 2
// for the degenerate rooted-binary form) and every other internal node has
// exactly 2 children. Trees with fewer than 3 leaves are trivially binary.
func (t *Tree) IsBinaryUnrooted() bool {
	if t.Root == nil {
		return false
	}
	if t.NumLeaves() < 3 {
		return true
	}
	ok := true
	t.Postorder(func(n *Node) {
		if n.IsLeaf() {
			return
		}
		if n == t.Root {
			if len(n.Children) != 3 && len(n.Children) != 2 {
				ok = false
			}
			return
		}
		if len(n.Children) != 2 {
			ok = false
		}
	})
	return ok
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t.Root == nil {
		return &Tree{}
	}
	return &Tree{Root: cloneNode(t.Root, nil)}
}

func cloneNode(n *Node, parent *Node) *Node {
	c := &Node{
		Name:      n.Name,
		Length:    n.Length,
		HasLength: n.HasLength,
		Parent:    parent,
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = cloneNode(ch, c)
	}
	return c
}

// Validate checks structural invariants: parent pointers are consistent,
// every leaf is named, and leaf names are unique. It returns the first
// violation found.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("tree: nil root")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("tree: root has a parent")
	}
	seen := make(map[string]bool)
	var err error
	t.Postorder(func(n *Node) {
		if err != nil {
			return
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("tree: child %q has inconsistent parent pointer", c.Name)
				return
			}
		}
		if n.IsLeaf() {
			if n.Name == "" {
				err = fmt.Errorf("tree: unnamed leaf")
				return
			}
			if seen[n.Name] {
				err = fmt.Errorf("tree: duplicate leaf name %q", n.Name)
				return
			}
			seen[n.Name] = true
		}
	})
	return err
}

// SuppressUnifurcations collapses nodes with exactly one child (which can
// arise from rerooting or pruning), merging branch lengths additively.
// The root itself is replaced by its single child if unary.
func (t *Tree) SuppressUnifurcations() {
	for t.Root != nil && !t.Root.IsLeaf() && len(t.Root.Children) == 1 {
		child := t.Root.Children[0]
		child.Parent = nil
		// Root edges carry no meaningful length in unrooted semantics.
		t.Root = child
	}
	if t.Root == nil {
		return
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		for i := 0; i < len(n.Children); i++ {
			c := n.Children[i]
			for !c.IsLeaf() && len(c.Children) == 1 {
				g := c.Children[0]
				if c.HasLength && g.HasLength {
					g.Length += c.Length
				} else if c.HasLength {
					g.Length = c.Length
					g.HasLength = true
				}
				g.Parent = n
				n.Children[i] = g
				c = g
			}
			walk(c)
		}
	}
	walk(t.Root)
}

// Deroot converts a rooted-binary serialization (root with 2 children) into
// the unrooted convention (root with 3 children) by merging the root's two
// edges. No-op if the root already has 3+ children or the tree is tiny.
// This makes bipartition sets from rooted and unrooted serializations of the
// same topology identical.
func (t *Tree) Deroot() {
	r := t.Root
	if r == nil || len(r.Children) != 2 {
		return
	}
	a, b := r.Children[0], r.Children[1]
	// Pick a non-leaf child to dissolve into the root; if both are leaves the
	// tree has 2 taxa and there is nothing to do.
	target := a
	keep := b
	if target.IsLeaf() {
		target, keep = b, a
	}
	if target.IsLeaf() {
		return
	}
	// The merged edge length is the sum of the two root edges.
	if target.HasLength && keep.HasLength {
		keep.Length += target.Length
	} else if target.HasLength {
		keep.Length = target.Length
		keep.HasLength = true
	}
	newChildren := make([]*Node, 0, len(target.Children)+1)
	newChildren = append(newChildren, keep)
	newChildren = append(newChildren, target.Children...)
	for _, c := range newChildren {
		c.Parent = r
	}
	r.Children = newChildren
	target.Children = nil
	target.Parent = nil
}
