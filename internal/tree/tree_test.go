package tree

import (
	"testing"
)

// build constructs ((A,B),(C,D)) rooted at a degree-2 root.
func buildQuartet() *Tree {
	root := &Node{}
	ab := &Node{}
	cd := &Node{}
	a := &Node{Name: "A"}
	b := &Node{Name: "B"}
	c := &Node{Name: "C"}
	d := &Node{Name: "D"}
	ab.AddChild(a)
	ab.AddChild(b)
	cd.AddChild(c)
	cd.AddChild(d)
	root.AddChild(ab)
	root.AddChild(cd)
	return New(root)
}

func TestPostorderVisitsChildrenFirst(t *testing.T) {
	tr := buildQuartet()
	var order []string
	pos := map[*Node]int{}
	i := 0
	tr.Postorder(func(n *Node) {
		pos[n] = i
		i++
		if n.IsLeaf() {
			order = append(order, n.Name)
		}
	})
	tr.Postorder(func(n *Node) {
		for _, c := range n.Children {
			if pos[c] >= pos[n] {
				t.Errorf("child visited after parent")
			}
		}
	})
	if len(order) != 4 {
		t.Errorf("leaves visited = %v", order)
	}
}

func TestPreorderVisitsParentsFirst(t *testing.T) {
	tr := buildQuartet()
	pos := map[*Node]int{}
	i := 0
	tr.Preorder(func(n *Node) {
		pos[n] = i
		i++
	})
	tr.Postorder(func(n *Node) {
		for _, c := range n.Children {
			if pos[c] <= pos[n] {
				t.Errorf("child visited before parent in preorder")
			}
		}
	})
}

func TestCounts(t *testing.T) {
	tr := buildQuartet()
	if tr.NumLeaves() != 4 {
		t.Errorf("NumLeaves = %d", tr.NumLeaves())
	}
	if tr.NumNodes() != 7 {
		t.Errorf("NumNodes = %d", tr.NumNodes())
	}
	if tr.NumInternalEdges() != 2 {
		t.Errorf("NumInternalEdges = %d", tr.NumInternalEdges())
	}
}

func TestIsBinaryUnrooted(t *testing.T) {
	tr := buildQuartet()
	if !tr.IsBinaryUnrooted() {
		t.Error("quartet should count as binary")
	}
	// Add a fifth child to an internal node: no longer binary.
	tr.Root.Children[0].AddChild(&Node{Name: "E"})
	if tr.IsBinaryUnrooted() {
		t.Error("trifurcating internal node should not be binary")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := buildQuartet()
	c := tr.Clone()
	c.Root.Children[0].Children[0].Name = "MUTATED"
	if tr.Root.Children[0].Children[0].Name == "MUTATED" {
		t.Error("Clone shares nodes with original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	tr := buildQuartet()
	if err := tr.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	// Duplicate leaf names.
	dup := buildQuartet()
	dup.Leaves()[0].Name = "D"
	if err := dup.Validate(); err == nil {
		t.Error("duplicate leaf name not detected")
	}
	// Unnamed leaf.
	anon := buildQuartet()
	anon.Leaves()[0].Name = ""
	if err := anon.Validate(); err == nil {
		t.Error("unnamed leaf not detected")
	}
	// Broken parent pointer.
	broken := buildQuartet()
	broken.Root.Children[0].Children[0].Parent = broken.Root
	if err := broken.Validate(); err == nil {
		t.Error("inconsistent parent pointer not detected")
	}
	// Nil root.
	if err := (&Tree{}).Validate(); err == nil {
		t.Error("nil root not detected")
	}
}

func TestDeroot(t *testing.T) {
	tr := buildQuartet()
	tr.Deroot()
	if len(tr.Root.Children) != 3 {
		t.Fatalf("after Deroot root has %d children, want 3", len(tr.Root.Children))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("derooted tree invalid: %v", err)
	}
	if tr.NumLeaves() != 4 {
		t.Errorf("leaves lost in Deroot: %d", tr.NumLeaves())
	}
}

func TestDerootMergesLengths(t *testing.T) {
	root := &Node{}
	ab := &Node{Length: 0.5, HasLength: true}
	ab.AddChild(&Node{Name: "A"})
	ab.AddChild(&Node{Name: "B"})
	c := &Node{Name: "C", Length: 0.25, HasLength: true}
	root.AddChild(ab)
	root.AddChild(c)
	tr := New(root)
	tr.Deroot()
	// After dissolving ab into the root, C's edge should carry 0.75.
	found := false
	for _, ch := range tr.Root.Children {
		if ch.Name == "C" {
			found = true
			if !ch.HasLength || ch.Length != 0.75 {
				t.Errorf("C edge = %v (has=%v), want 0.75", ch.Length, ch.HasLength)
			}
		}
	}
	if !found {
		t.Fatal("C not a root child after Deroot")
	}
}

func TestDerootNoopOnTrifurcation(t *testing.T) {
	root := &Node{}
	for _, n := range []string{"A", "B", "C"} {
		root.AddChild(&Node{Name: n})
	}
	tr := New(root)
	tr.Deroot()
	if len(tr.Root.Children) != 3 {
		t.Error("Deroot should be a no-op on a trifurcating root")
	}
}

func TestDerootTwoLeaves(t *testing.T) {
	root := &Node{}
	root.AddChild(&Node{Name: "A"})
	root.AddChild(&Node{Name: "B"})
	tr := New(root)
	tr.Deroot() // must not panic or corrupt
	if tr.NumLeaves() != 2 {
		t.Errorf("two-leaf tree corrupted: %d leaves", tr.NumLeaves())
	}
}

func TestSuppressUnifurcations(t *testing.T) {
	// root -> u -> v -> (A, B); u and v are unary.
	root := &Node{}
	u := &Node{Length: 1, HasLength: true}
	v := &Node{Length: 2, HasLength: true}
	ab := &Node{Length: 3, HasLength: true}
	ab.AddChild(&Node{Name: "A"})
	ab.AddChild(&Node{Name: "B"})
	v.AddChild(ab)
	u.AddChild(v)
	root.AddChild(u)
	root.AddChild(&Node{Name: "C"})
	tr := New(root)
	tr.SuppressUnifurcations()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid after suppression: %v", err)
	}
	// The chain u->v->ab should collapse into a single child with summed
	// length 1+2+3 = 6.
	var merged *Node
	for _, ch := range tr.Root.Children {
		if !ch.IsLeaf() {
			merged = ch
		}
	}
	if merged == nil || merged.Length != 6 {
		t.Errorf("merged length = %+v, want 6", merged)
	}
}

func TestSuppressUnifurcationsUnaryRoot(t *testing.T) {
	root := &Node{}
	inner := &Node{}
	inner.AddChild(&Node{Name: "A"})
	inner.AddChild(&Node{Name: "B"})
	root.AddChild(inner)
	tr := New(root)
	tr.SuppressUnifurcations()
	if tr.Root != inner {
		t.Error("unary root should be replaced by its child")
	}
	if tr.Root.Parent != nil {
		t.Error("new root must have nil parent")
	}
}

func TestRestrict(t *testing.T) {
	tr := buildQuartet()
	keep := map[string]bool{"A": true, "C": true, "D": true}
	got, err := Restrict(tr, func(n string) bool { return keep[n] })
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != 3 {
		t.Errorf("restricted leaves = %d, want 3", got.NumLeaves())
	}
	if err := got.Validate(); err != nil {
		t.Errorf("restricted tree invalid: %v", err)
	}
	// Original untouched.
	if tr.NumLeaves() != 4 {
		t.Error("Restrict mutated its input")
	}
}

func TestRestrictMergesLengths(t *testing.T) {
	// ((A:1,B:2):4,(C:8,D:16):32) restricted to {A,C,D}: A's path keeps the
	// unary-merged 1+4 pendant edge.
	root := &Node{}
	ab := &Node{Length: 4, HasLength: true}
	ab.AddChild(&Node{Name: "A", Length: 1, HasLength: true})
	ab.AddChild(&Node{Name: "B", Length: 2, HasLength: true})
	cd := &Node{Length: 32, HasLength: true}
	cd.AddChild(&Node{Name: "C", Length: 8, HasLength: true})
	cd.AddChild(&Node{Name: "D", Length: 16, HasLength: true})
	root.AddChild(ab)
	root.AddChild(cd)
	keep := map[string]bool{"A": true, "C": true, "D": true}
	got, err := Restrict(New(root), func(n string) bool { return keep[n] })
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range got.Leaves() {
		if l.Name == "A" && l.Length != 5 {
			t.Errorf("A pendant edge = %v, want 5 (1+4 merged)", l.Length)
		}
	}
}

func TestRestrictErrors(t *testing.T) {
	tr := buildQuartet()
	if _, err := Restrict(tr, func(string) bool { return false }); err == nil {
		t.Error("restriction to nothing should fail")
	}
	if _, err := Restrict(tr, func(n string) bool { return n == "A" }); err == nil {
		t.Error("restriction to one leaf should fail")
	}
}

func TestDegree(t *testing.T) {
	tr := buildQuartet()
	if tr.Root.Degree() != 2 {
		t.Errorf("root degree = %d, want 2", tr.Root.Degree())
	}
	if tr.Root.Children[0].Degree() != 3 {
		t.Errorf("internal degree = %d, want 3", tr.Root.Children[0].Degree())
	}
	if tr.Leaves()[0].Degree() != 1 {
		t.Errorf("leaf degree = %d, want 1", tr.Leaves()[0].Degree())
	}
}

func TestDeepTreeDoesNotOverflow(t *testing.T) {
	// A caterpillar of depth 200k exercises the iterative traversals.
	root := &Node{}
	cur := root
	for i := 0; i < 200000; i++ {
		leaf := &Node{Name: "leaf"} // names duplicated; traversal only
		next := &Node{}
		cur.AddChild(leaf)
		cur.AddChild(next)
		cur = next
	}
	cur.Name = "tip"
	tr := New(root)
	if n := tr.NumNodes(); n != 400001 {
		t.Errorf("NumNodes = %d", n)
	}
	count := 0
	tr.Preorder(func(*Node) { count++ })
	if count != 400001 {
		t.Errorf("Preorder visited %d", count)
	}
}
