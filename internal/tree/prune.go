package tree

import "fmt"

// Restrict returns a deep copy of t containing only the leaves for which
// keep returns true, with resulting unary internal nodes suppressed (branch
// lengths merged additively). This is the "intersection reduction" used for
// variable-taxa RF (paper §VII.E): restrict every tree to the common taxa,
// then compare as usual.
//
// It returns an error if fewer than 2 leaves survive.
func Restrict(t *Tree, keep func(name string) bool) (*Tree, error) {
	c := t.Clone()
	root := pruneNode(c.Root, keep)
	if root == nil {
		return nil, fmt.Errorf("tree: restriction removed every leaf")
	}
	c.Root = root
	c.Root.Parent = nil
	c.SuppressUnifurcations()
	if c.NumLeaves() < 2 {
		return nil, fmt.Errorf("tree: restriction left %d leaves; need at least 2", c.NumLeaves())
	}
	return c, nil
}

// pruneNode removes pruned leaves bottom-up, returning the (possibly
// replaced) node or nil if the whole subtree is pruned.
func pruneNode(n *Node, keep func(string) bool) *Node {
	if n.IsLeaf() {
		if keep(n.Name) {
			return n
		}
		return nil
	}
	kept := n.Children[:0]
	for _, c := range n.Children {
		if pc := pruneNode(c, keep); pc != nil {
			pc.Parent = n
			kept = append(kept, pc)
		}
	}
	n.Children = kept
	switch len(kept) {
	case 0:
		return nil
	case 1:
		// Merge this unary node into its single child.
		child := kept[0]
		if n.HasLength && child.HasLength {
			child.Length += n.Length
		} else if n.HasLength {
			child.Length = n.Length
			child.HasLength = true
		}
		child.Parent = n.Parent
		return child
	default:
		return n
	}
}
