package tree

import "fmt"

// Deterministic tree constructors for tests, benchmarks and worked
// examples: the two extreme binary shapes.

// Caterpillar builds the maximally unbalanced (pectinate) unrooted binary
// tree over the names, in order: (((n0,n1),n2),n3)… derooted to the
// conventional 3-child root. It panics on fewer than 2 names.
func Caterpillar(names []string) *Tree {
	if len(names) < 2 {
		panic(fmt.Sprintf("tree: Caterpillar needs at least 2 names, have %d", len(names)))
	}
	cur := &Node{}
	cur.AddChild(&Node{Name: names[0]})
	cur.AddChild(&Node{Name: names[1]})
	for _, name := range names[2:] {
		parent := &Node{}
		parent.AddChild(cur)
		parent.AddChild(&Node{Name: name})
		cur = parent
	}
	t := New(cur)
	t.Deroot()
	return t
}

// Balanced builds the maximally balanced unrooted binary tree over the
// names by recursive halving, derooted to the conventional 3-child root.
// It panics on fewer than 2 names.
func Balanced(names []string) *Tree {
	if len(names) < 2 {
		panic(fmt.Sprintf("tree: Balanced needs at least 2 names, have %d", len(names)))
	}
	t := New(balancedNode(names))
	t.Deroot()
	return t
}

func balancedNode(names []string) *Node {
	if len(names) == 1 {
		return &Node{Name: names[0]}
	}
	mid := len(names) / 2
	n := &Node{}
	n.AddChild(balancedNode(names[:mid]))
	n.AddChild(balancedNode(names[mid:]))
	return n
}
