package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func TestCreateLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := Header{Fingerprint: 0xdeadbeefcafe, Config: "variant=rf workers=4"}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 1.5, 3: 0, 7: 42.25, 12: 1e-9}
	for idx, avg := range want {
		if err := w.Record(idx, avg); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Header != hdr {
		t.Fatalf("header round trip: got %+v want %+v", res.Header, hdr)
	}
	if len(res.Done) != len(want) {
		t.Fatalf("got %d records, want %d", len(res.Done), len(want))
	}
	for idx, avg := range want {
		if got, ok := res.Done[idx]; !ok || got != avg {
			t.Fatalf("record %d: got %v (%v), want %v", idx, got, ok, avg)
		}
	}
	if res.CorruptBytes != 0 || res.CorruptLines != 0 {
		t.Fatalf("clean file reported corruption: %+v", res)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestCorruptRecordTruncatesNotFolds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := Header{Fingerprint: 1, Config: "c"}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Record(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside record 2's stored bits: its checksum now fails,
	// and records 3 and 4 (beyond the corruption) must be dropped too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	bad := []byte(lines[3])
	bad[4] ^= 0x01
	lines[3] = string(bad)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Done) != 2 {
		t.Fatalf("got %d records past corruption, want 2: %v", len(res.Done), res.Done)
	}
	if res.CorruptLines != 3 {
		t.Fatalf("CorruptLines = %d, want 3", res.CorruptLines)
	}
}

func TestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := Create(path, Header{Fingerprint: 1, Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	w.Record(0, 1)
	w.Record(1, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: chop the final newline and a few bytes.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Done) != 1 {
		t.Fatalf("torn tail: got %d records, want 1", len(res.Done))
	}
	if res.CorruptBytes == 0 || res.CorruptLines != 1 {
		t.Fatalf("torn tail not reported: %+v", res)
	}
}

func TestResumeQuarantinesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	hdr := Header{Fingerprint: 9, Config: "c"}
	w, err := Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(0, 0.5)
	w.Record(1, 1.5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("r 2 garbagegarbage crc=00000000\n")
	f.Close()

	w2, res, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Done) != 2 {
		t.Fatalf("resume restored %d records, want 2", len(res.Done))
	}
	// Corrupt tail is preserved on the side, not folded in.
	q, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(q), "garbage") {
		t.Fatalf("quarantine file missing corrupt tail: %q", q)
	}
	// The writer appends after the valid prefix; a fresh Load sees old and
	// new records, no corruption.
	if err := w2.Record(2, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Done) != 3 || res2.CorruptBytes != 0 {
		t.Fatalf("post-resume load: %+v", res2)
	}
	if res2.Done[2] != 2.5 {
		t.Fatalf("appended record = %v, want 2.5", res2.Done[2])
	}
}

func TestResumeRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := Create(path, Header{Fingerprint: 1, Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, Header{Fingerprint: 2, Config: "c"}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("fingerprint mismatch: got %v, want ErrMismatch", err)
	}
	if _, _, err := Resume(path, Header{Fingerprint: 1, Config: "other"}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("config mismatch: got %v, want ErrMismatch", err)
	}
}

func TestResumeFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := Header{Fingerprint: 5, Config: "c"}
	w, res, err := Resume(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Done) != 0 {
		t.Fatalf("fresh resume has %d done", len(res.Done))
	}
	w.Record(0, 7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil || got.Done[0] != 7 {
		t.Fatalf("fresh resume round trip: %+v, %v", got, err)
	}
}

func TestIntervalFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := Create(path, Header{Fingerprint: 1, Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	w.Interval = 2
	w.Record(0, 1)
	w.Record(1, 2) // triggers flush
	w.Record(2, 3) // buffered only

	// Without closing, a concurrent Load must see at least the flushed two.
	res, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Done) < 2 {
		t.Fatalf("interval flush: load saw %d records, want >=2", len(res.Done))
	}
	w.Close()
}

func TestInjectedFlushFault(t *testing.T) {
	defer faultinject.Disarm()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := Create(path, Header{Fingerprint: 1, Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	w.Interval = 1
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointCheckpointWrite, Kind: faultinject.KindError, Hit: 1,
	})
	if err := w.Record(0, 1); err == nil {
		t.Fatal("flush fault not surfaced")
	}
	faultinject.Disarm()
	if err := w.Record(1, 2); err != nil {
		t.Fatalf("recovery after flush fault: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRejectsTampering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := Create(path, Header{Fingerprint: 1, Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, _ := os.ReadFile(path)
	data[len(magic)+4] ^= 0x01 // flip a fingerprint hex digit
	os.WriteFile(path, data, 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("tampered header accepted")
	}
}
