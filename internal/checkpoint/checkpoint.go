// Package checkpoint makes long average-RF batch runs crash-safe. Results
// stream into an append-only record file — one CRC-protected line per
// completed query tree, flushed and fsync'd every Interval records — so a
// crash (OOM kill, power loss, SIGKILL) loses at most the last unflushed
// batch. A header line pins the checkpoint to the reference collection
// (its BFH fingerprint) and the run configuration, so -resume can refuse
// to mix results computed against a different reference set.
//
// The format is deliberately line-oriented text:
//
//	bfhrf-checkpoint v1 fp=<16 hex> cfg=<quoted config> crc=<8 hex>
//	r <query index> <float64 bits, 16 hex> crc=<8 hex>
//
// Loading stops at the first record that fails its checksum or does not
// parse — everything from that point on (a torn write, a corrupted
// sector, manual tampering) is quarantined to a side file and recomputed,
// never silently folded into the averages. Resumed values are the exact
// bit patterns that were stored, so an interrupted-then-resumed run is
// bit-identical to an uninterrupted one.
package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Metrics published into the obs Default registry (scraped via the
// bfhrfd admin endpoint; also a cheap progress signal for bfhrf).
var (
	mRecords = obs.Counter("bfhrf_checkpoint_records_total",
		"Per-query results appended to a checkpoint file.")
	mFlushes = obs.Counter("bfhrf_checkpoint_flushes_total",
		"Checkpoint flush+fsync cycles completed.")
	mCorrupt = obs.Counter("bfhrf_checkpoint_corrupt_records_total",
		"Checkpoint lines rejected by checksum or parse and quarantined.")
	mRestored = obs.Counter("bfhrf_checkpoint_restored_total",
		"Per-query results restored from a checkpoint on resume.")
)

// ErrMismatch reports a checkpoint whose header does not match the
// current run: the reference collection or the configuration changed
// since the checkpoint was written. Resuming would mix incomparable
// results, so callers must either recompute from scratch or restore the
// matching inputs.
var ErrMismatch = errors.New("checkpoint: fingerprint/config mismatch")

const magic = "bfhrf-checkpoint v1"

// Header identifies what a checkpoint's results were computed against.
type Header struct {
	// Fingerprint is the reference collection's identity (for bfhrf, the
	// built BFH's fingerprint; for bfhrfd, the coordinator load
	// fingerprint). Resume requires an exact match.
	Fingerprint uint64
	// Config is a canonical rendering of the result-affecting options
	// (variant, filters, taxa mode); it must match exactly too.
	Config string
}

func headerLine(h Header) string {
	body := fmt.Sprintf("%s fp=%016x cfg=%s", magic, h.Fingerprint, strconv.Quote(h.Config))
	return fmt.Sprintf("%s crc=%08x\n", body, crc32.ChecksumIEEE([]byte(body)))
}

func recordLine(idx int, avg float64) string {
	body := fmt.Sprintf("r %d %016x", idx, math.Float64bits(avg))
	return fmt.Sprintf("%s crc=%08x\n", body, crc32.ChecksumIEEE([]byte(body)))
}

// splitCRC validates "…​ crc=xxxxxxxx" and returns the body.
func splitCRC(line string) (string, bool) {
	i := strings.LastIndex(line, " crc=")
	if i < 0 || len(line)-(i+5) != 8 {
		return "", false
	}
	want, err := strconv.ParseUint(line[i+5:], 16, 32)
	if err != nil {
		return "", false
	}
	body := line[:i]
	if crc32.ChecksumIEEE([]byte(body)) != uint32(want) {
		return "", false
	}
	return body, true
}

func parseHeader(body string) (Header, bool) {
	rest, found := strings.CutPrefix(body, magic+" ")
	if !found {
		return Header{}, false
	}
	var fpHex string
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 || !strings.HasPrefix(fields[0], "fp=") || !strings.HasPrefix(fields[1], "cfg=") {
		return Header{}, false
	}
	fpHex = strings.TrimPrefix(fields[0], "fp=")
	fp, err := strconv.ParseUint(fpHex, 16, 64)
	if err != nil {
		return Header{}, false
	}
	cfg, err := strconv.Unquote(strings.TrimPrefix(fields[1], "cfg="))
	if err != nil {
		return Header{}, false
	}
	return Header{Fingerprint: fp, Config: cfg}, true
}

func parseRecord(body string) (int, float64, bool) {
	fields := strings.Split(body, " ")
	if len(fields) != 3 || fields[0] != "r" {
		return 0, 0, false
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil || idx < 0 {
		return 0, 0, false
	}
	bits, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil || len(fields[2]) != 16 {
		return 0, 0, false
	}
	return idx, math.Float64frombits(bits), true
}

// LoadResult is what Load recovered from an existing checkpoint file.
type LoadResult struct {
	Header Header
	// Done maps query index to its stored average for every valid record.
	Done map[int]float64
	// ValidBytes is the length of the valid prefix; everything beyond it
	// failed validation.
	ValidBytes int64
	// CorruptBytes counts the invalid suffix (0 for a clean file).
	CorruptBytes int64
	// CorruptLines counts lines dropped, including everything after the
	// first bad one (records beyond a corruption are not trusted either).
	CorruptLines int
}

// Load reads and validates a checkpoint file. A missing file returns an
// error satisfying os.IsNotExist. A file whose header is unreadable
// returns an error (there is nothing safe to resume from). Corrupt or
// torn records only truncate: the valid prefix is returned and the
// boundary reported so Resume can quarantine the rest.
func Load(path string) (*LoadResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	res := &LoadResult{Done: make(map[int]float64)}

	readLine := func() (string, bool) {
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasSuffix(line, "\n") {
			// Torn tail (no terminating newline) is invalid by definition.
			return "", false
		}
		return line, true
	}

	line, ok := readLine()
	if !ok {
		return nil, fmt.Errorf("checkpoint: %s: missing or torn header", path)
	}
	body, ok := splitCRC(strings.TrimSuffix(line, "\n"))
	if !ok {
		return nil, fmt.Errorf("checkpoint: %s: header failed checksum", path)
	}
	hdr, ok := parseHeader(body)
	if !ok {
		return nil, fmt.Errorf("checkpoint: %s: unrecognized header %q", path, body)
	}
	res.Header = hdr
	res.ValidBytes = int64(len(line))

	for {
		if err := faultinject.Hit(faultinject.PointCheckpointRead); err != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
		}
		line, ok := readLine()
		if !ok {
			break
		}
		body, ok := splitCRC(strings.TrimSuffix(line, "\n"))
		if !ok {
			break
		}
		idx, avg, ok := parseRecord(body)
		if !ok {
			break
		}
		res.Done[idx] = avg
		res.ValidBytes += int64(len(line))
	}

	res.CorruptBytes = st.Size() - res.ValidBytes
	if res.CorruptBytes > 0 {
		// Count whole dropped lines for the diagnostic (approximate for a
		// torn final line, which has no terminator).
		rest := make([]byte, 0)
		if _, err := f.Seek(res.ValidBytes, io.SeekStart); err == nil {
			rest, _ = io.ReadAll(f)
		}
		res.CorruptLines = strings.Count(string(rest), "\n")
		if len(rest) > 0 && !strings.HasSuffix(string(rest), "\n") {
			res.CorruptLines++
		}
		mCorrupt.Add(uint64(res.CorruptLines))
	}
	mRestored.Add(uint64(len(res.Done)))
	return res, nil
}

// Writer appends CRC-protected result records to a checkpoint file,
// flushing and fsyncing every Interval records (and on Flush/Close).
// Record is safe for concurrent use — query workers call it directly.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	pending  int
	Interval int
}

// DefaultInterval is how many records accumulate between fsyncs when the
// caller does not configure an interval.
const DefaultInterval = 64

// Create starts a fresh checkpoint at path (truncating any previous one)
// with the given header, flushed and fsync'd immediately so even an
// instant crash leaves a resumable (empty) checkpoint.
func Create(path string, hdr Header) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &Writer{f: f, bw: bufio.NewWriter(f), Interval: DefaultInterval}
	if _, err := w.bw.WriteString(headerLine(hdr)); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.flushLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Resume opens path for a run described by hdr. A missing file starts a
// fresh checkpoint. An existing one must match hdr exactly (ErrMismatch
// otherwise); its valid records are returned, any corrupt tail is copied
// to path+".quarantine" and truncated away, and the writer appends after
// the valid prefix.
func Resume(path string, hdr Header) (*Writer, *LoadResult, error) {
	res, err := Load(path)
	if os.IsNotExist(err) {
		w, err := Create(path, hdr)
		if err != nil {
			return nil, nil, err
		}
		return w, &LoadResult{Header: hdr, Done: map[int]float64{}}, nil
	}
	if err != nil {
		return nil, nil, err
	}
	if res.Header != hdr {
		return nil, nil, fmt.Errorf("%w: checkpoint %s has fp=%016x cfg=%q, run has fp=%016x cfg=%q",
			ErrMismatch, path, res.Header.Fingerprint, res.Header.Config, hdr.Fingerprint, hdr.Config)
	}
	if res.CorruptBytes > 0 {
		if err := quarantine(path, res.ValidBytes); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), Interval: DefaultInterval}, res, nil
}

// quarantine saves the invalid suffix of path to path+".quarantine" and
// truncates path to validBytes, so the corruption stays inspectable but
// can never leak back into results.
func quarantine(path string, validBytes int64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := atomicio.WriteFile(path+".quarantine", tail); err != nil {
		return err
	}
	if err := os.Truncate(path, validBytes); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Record appends one result. Every Interval records it flushes and
// fsyncs, bounding what a crash can lose.
func (w *Writer) Record(idx int, avg float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.bw.WriteString(recordLine(idx, avg)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	mRecords.Inc()
	w.pending++
	if interval := w.interval(); w.pending >= interval {
		return w.flushLocked()
	}
	return nil
}

func (w *Writer) interval() int {
	if w.Interval <= 0 {
		return DefaultInterval
	}
	return w.Interval
}

// Flush forces buffered records to stable storage.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if err := faultinject.Hit(faultinject.PointCheckpointWrite); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	w.pending = 0
	mFlushes.Inc()
	return nil
}

// Close flushes outstanding records and closes the file. The checkpoint
// stays on disk; callers delete it (os.Remove) only after the final
// output has been committed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	ferr := w.flushLocked()
	cerr := w.f.Close()
	w.f = nil
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: %w", cerr)
	}
	return nil
}
