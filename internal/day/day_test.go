package day

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bipart"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestPaperExample(t *testing.T) {
	// RF(((A,B),(C,D)), ((D,B),(C,A))) = 2 per the paper's Eq. 1 example.
	t1 := newick.MustParse("((A,B),(C,D));")
	t2 := newick.MustParse("((D,B),(C,A));")
	if d := MustRF(t1, t2); d != 2 {
		t.Errorf("RF = %d, want 2", d)
	}
}

func TestIdenticalTrees(t *testing.T) {
	t1 := newick.MustParse("((A,B),((C,D),(E,F)));")
	if d := MustRF(t1, t1.Clone()); d != 0 {
		t.Errorf("RF(T,T) = %d, want 0", d)
	}
}

func TestDifferentRootingsSameTopology(t *testing.T) {
	// The same unrooted topology with different root placements.
	t1 := newick.MustParse("((A,B),((C,D),(E,F)));")
	t2 := newick.MustParse("(((A,B),(C,D)),(E,F));")
	t3 := newick.MustParse("(C,D,((E,F),(A,B)));")
	if d := MustRF(t1, t2); d != 0 {
		t.Errorf("RF across rootings = %d, want 0", d)
	}
	if d := MustRF(t1, t3); d != 0 {
		t.Errorf("RF across rootings (deg-3) = %d, want 0", d)
	}
}

func TestMaximallyDifferent(t *testing.T) {
	// Two 5-taxon caterpillars sharing no non-trivial splits: RF = 2(n−3).
	t1 := newick.MustParse("((((A,B),C),D),E);")
	t2 := newick.MustParse("((((A,E),C),B),D);")
	d := MustRF(t1, t2)
	sets := setRF(t, t1, t2)
	if d != sets {
		t.Errorf("Day = %d, set-based = %d", d, sets)
	}
}

func TestSmallTrees(t *testing.T) {
	// n < 4: no non-trivial splits, RF must be 0.
	t1 := newick.MustParse("(A,B,C);")
	t2 := newick.MustParse("(A,(B,C));")
	if d := MustRF(t1, t2); d != 0 {
		t.Errorf("3-taxon RF = %d, want 0", d)
	}
	t3 := newick.MustParse("(A,B);")
	t4 := newick.MustParse("(B,A);")
	if d := MustRF(t3, t4); d != 0 {
		t.Errorf("2-taxon RF = %d, want 0", d)
	}
}

func TestMultifurcatingTrees(t *testing.T) {
	// Star vs resolved tree: star has no splits, so RF = n−3 of the
	// resolved one.
	star := newick.MustParse("(A,B,C,D,E,F);")
	resolved := newick.MustParse("((A,B),((C,D),(E,F)));")
	if d := MustRF(star, resolved); d != 3 {
		t.Errorf("star vs binary RF = %d, want 3", d)
	}
	// Partially resolved.
	part := newick.MustParse("((A,B),C,D,E,F);")
	if d := MustRF(part, resolved); d != 2 {
		t.Errorf("partial vs binary RF = %d, want 2", d)
	}
}

func TestErrors(t *testing.T) {
	t1 := newick.MustParse("((A,B),(C,D));")
	if _, err := RF(t1, newick.MustParse("((A,B),(C,E));")); err == nil {
		t.Error("different leaf sets should fail")
	}
	if _, err := RF(t1, newick.MustParse("(A,B,C);")); err == nil {
		t.Error("different leaf counts should fail")
	}
	if _, err := RF(t1, &tree.Tree{}); err == nil {
		t.Error("nil root should fail")
	}
	dup := newick.MustParse("((A,A),(C,D));")
	if _, err := RF(dup, t1); err == nil {
		t.Error("duplicate leaves should fail")
	}
}

// setRF computes RF by explicit bipartition sets, the independent method.
func setRF(t *testing.T, t1, t2 *tree.Tree) int {
	t.Helper()
	names := t1.LeafNames()
	ts, err := taxa.NewSet(names)
	if err != nil {
		t.Fatal(err)
	}
	ex := bipart.NewExtractor(ts)
	b1, err := ex.Extract(t1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ex.Extract(t2)
	if err != nil {
		t.Fatal(err)
	}
	return bipart.SetOf(b1).SymmetricDifferenceSize(bipart.SetOf(b2))
}

// TestQuickAgreesWithSetBased cross-checks Day's algorithm against the
// explicit set-difference computation on random tree pairs — the central
// correctness property.
func TestQuickAgreesWithSetBased(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 4
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		t1 := simphy.RandomBinary(ts, rng)
		t2 := simphy.RandomBinary(ts, rng)
		d1, err := RF(t1, t2)
		if err != nil {
			return false
		}
		return d1 == setRF(t, t1, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickMetricProperties: symmetry, identity, triangle inequality, and
// the binary upper bound 2(n−3).
func TestQuickMetricProperties(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%30 + 4
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		a := simphy.RandomBinary(ts, rng)
		b := simphy.RandomBinary(ts, rng)
		c := simphy.RandomBinary(ts, rng)
		dab, dba := MustRF(a, b), MustRF(b, a)
		if dab != dba {
			return false
		}
		if MustRF(a, a.Clone()) != 0 {
			return false
		}
		if dab > 2*(n-3) {
			return false
		}
		return dab <= MustRF(a, c)+MustRF(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickNNIDistance: a single NNI changes exactly one split, so
// 0 ≤ RF(T, NNI(T)) ≤ 2.
func TestQuickNNIDistance(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%30 + 5
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		a := simphy.RandomBinary(ts, rng)
		b := simphy.NNI(a, rng)
		d := MustRF(a, b)
		return d >= 0 && d <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDayRF(b *testing.B) {
	ts := taxa.Generate(500)
	rng := rand.New(rand.NewSource(1))
	t1 := simphy.RandomBinary(ts, rng)
	t2 := simphy.RandomBinary(ts, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RF(t1, t2); err != nil {
			b.Fatal(err)
		}
	}
}
