package day

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/collection"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestEngineMatchesDirectMean(t *testing.T) {
	ts := taxa.Generate(14)
	rng := rand.New(rand.NewSource(42))
	refs := make([]*tree.Tree, 15)
	for i := range refs {
		refs[i] = simphy.RandomBinary(ts, rng)
	}
	queries := make([]*tree.Tree, 6)
	for i := range queries {
		queries[i] = simphy.RandomBinary(ts, rng)
	}
	got, err := AverageRF(collection.FromTrees(queries), collection.FromTrees(refs), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		sum := 0
		for _, r := range refs {
			sum += MustRF(q, r)
		}
		want := float64(sum) / float64(len(refs))
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("query %d: engine %v vs direct %v", i, got[i], want)
		}
	}
}

func TestEngineWorkerCountsAgree(t *testing.T) {
	ts := taxa.Generate(10)
	rng := rand.New(rand.NewSource(3))
	trees := make([]*tree.Tree, 20)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	src := collection.FromTrees(trees)
	a, err := AverageRF(src, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AverageRF(src, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("query %d: workers=1 %v vs workers=8 %v", i, a[i], b[i])
		}
	}
}

func TestEngineErrors(t *testing.T) {
	ts := taxa.Generate(8)
	rng := rand.New(rand.NewSource(1))
	good := simphy.RandomBinary(ts, rng)
	other := simphy.RandomBinary(taxa.Generate(9), rng)
	if _, err := AverageRF(collection.FromTrees([]*tree.Tree{good}), collection.FromTrees(nil), 2); err == nil {
		t.Error("empty reference should fail")
	}
	if _, err := AverageRF(
		collection.FromTrees([]*tree.Tree{other}),
		collection.FromTrees([]*tree.Tree{good}), 2); err == nil {
		t.Error("mismatched taxa should fail")
	}
}
