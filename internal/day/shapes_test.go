package day

import (
	"fmt"
	"testing"

	"repro/internal/bipart"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Extreme-shape cross-checks: the caterpillar maximizes depth (stressing
// the interval bookkeeping), the balanced tree maximizes bushiness.

func shapeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%03d", i)
	}
	return out
}

func TestCaterpillarVsBalanced(t *testing.T) {
	for _, n := range []int{8, 16, 33, 64} {
		names := shapeNames(n)
		cat := tree.Caterpillar(names)
		bal := tree.Balanced(names)
		got := MustRF(cat, bal)
		// Cross-check with the set-based oracle.
		ts, err := taxa.NewSet(names)
		if err != nil {
			t.Fatal(err)
		}
		ex := bipart.NewExtractor(ts)
		want := bipart.SetOf(ex.MustExtract(cat)).SymmetricDifferenceSize(
			bipart.SetOf(ex.MustExtract(bal)))
		if got != want {
			t.Errorf("n=%d: Day %d vs sets %d", n, got, want)
		}
		if MustRF(cat, cat.Clone()) != 0 || MustRF(bal, bal.Clone()) != 0 {
			t.Errorf("n=%d: self distance nonzero", n)
		}
	}
}

func TestCaterpillarReversal(t *testing.T) {
	// A caterpillar and its reversal share many splits for small n; the
	// distance must still be symmetric and bounded.
	n := 12
	names := shapeNames(n)
	rev := make([]string, n)
	for i := range rev {
		rev[i] = names[n-1-i]
	}
	a := tree.Caterpillar(names)
	b := tree.Caterpillar(rev)
	// The same ladder built from either end is the same unrooted topology.
	if d := MustRF(a, b); d != 0 {
		t.Errorf("caterpillar vs reversed caterpillar RF = %d, want 0", d)
	}
}

func TestLargeTreePerformanceSanity(t *testing.T) {
	// O(n) pairwise RF must handle thousands of taxa instantly.
	names := shapeNames(5000)
	a := tree.Caterpillar(names)
	b := tree.Balanced(names)
	d := MustRF(a, b)
	if d <= 0 || d > 2*(5000-3) {
		t.Errorf("RF = %d out of range", d)
	}
}
