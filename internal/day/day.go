// Package day implements Day's algorithm (Day 1985, cited by the paper as
// the O(n) method for pairwise RF). It computes the exact Robinson-Foulds
// distance between two unrooted trees on the same leaf set in linear time,
// and serves throughout this repository as the independent verification
// oracle against which the bitmask-based engines are checked.
//
// Method: orient both trees away from a shared anchor leaf. Number the
// leaves of T1 in discovery (postorder) order; every cluster of the oriented
// T1 is then a contiguous interval [min,max] of those numbers. A cluster of
// T2 equals a cluster of T1 iff its leaf numbers form an interval present in
// T1's interval table and its size matches the interval width. RF is
// i1 + i2 − 2·shared over the non-trivial clusters.
package day

import (
	"fmt"

	"repro/internal/tree"
)

// RF returns the Robinson-Foulds distance between t1 and t2 (the symmetric
// difference of their non-trivial bipartition sets, paper Eq. 1). The trees
// must have identical leaf name sets with at least 2 leaves.
func RF(t1, t2 *tree.Tree) (int, error) {
	g1, err := newGraph(t1)
	if err != nil {
		return 0, fmt.Errorf("day: first tree: %w", err)
	}
	g2, err := newGraph(t2)
	if err != nil {
		return 0, fmt.Errorf("day: second tree: %w", err)
	}
	if len(g1.leafOf) != len(g2.leafOf) {
		return 0, fmt.Errorf("day: leaf count mismatch: %d vs %d", len(g1.leafOf), len(g2.leafOf))
	}
	anchor := ""
	for name := range g1.leafOf {
		if _, ok := g2.leafOf[name]; !ok {
			return 0, fmt.Errorf("day: leaf %q present only in first tree", name)
		}
		if anchor == "" || name < anchor {
			anchor = name
		}
	}
	n := len(g1.leafOf)
	if n < 4 {
		return 0, nil // no non-trivial splits possible
	}

	// Pass 1: number T1's leaves in discovery order from the anchor and
	// collect its cluster intervals.
	num := make(map[string]int, n-1)
	intervals := make(map[[2]int]bool)
	i1 := 0
	next := 0
	g1.clusters(anchor, func(name string) int {
		num[name] = next
		next++
		return num[name]
	}, func(lo, hi, size int) {
		if size >= 2 && size <= n-2 {
			// Clusters of the oriented T1 are always exact intervals.
			intervals[[2]int{lo, hi}] = true
			i1++
		}
	})

	// Pass 2: walk T2 with T1's numbering; count matches.
	i2, shared := 0, 0
	var missing error
	g2.clusters(anchor, func(name string) int {
		v, ok := num[name]
		if !ok && missing == nil {
			missing = fmt.Errorf("day: leaf %q present only in second tree", name)
		}
		return v
	}, func(lo, hi, size int) {
		if size < 2 || size > n-2 {
			return
		}
		i2++
		if hi-lo+1 == size && intervals[[2]int{lo, hi}] {
			shared++
		}
	})
	if missing != nil {
		return 0, missing
	}
	return i1 + i2 - 2*shared, nil
}

// MustRF is RF but panics on error. For tests.
func MustRF(t1, t2 *tree.Tree) int {
	d, err := RF(t1, t2)
	if err != nil {
		panic(err)
	}
	return d
}

// graph is an undirected adjacency view of a tree, so clusters can be
// computed relative to any anchor leaf without mutating the tree.
type graph struct {
	adj    map[*tree.Node][]*tree.Node
	leafOf map[string]*tree.Node
}

func newGraph(t *tree.Tree) (*graph, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("nil tree")
	}
	g := &graph{
		adj:    make(map[*tree.Node][]*tree.Node),
		leafOf: make(map[string]*tree.Node),
	}
	var err error
	t.Postorder(func(n *tree.Node) {
		if err != nil {
			return
		}
		if n.Parent != nil {
			g.adj[n] = append(g.adj[n], n.Parent)
			g.adj[n.Parent] = append(g.adj[n.Parent], n)
		}
		if n.IsLeaf() {
			if n.Name == "" {
				err = fmt.Errorf("unnamed leaf")
				return
			}
			if _, dup := g.leafOf[n.Name]; dup {
				err = fmt.Errorf("duplicate leaf %q", n.Name)
				return
			}
			g.leafOf[n.Name] = n
		}
	})
	if err != nil {
		return nil, err
	}
	if len(g.leafOf) < 2 {
		return nil, fmt.Errorf("tree has %d leaves; need at least 2", len(g.leafOf))
	}
	return g, nil
}

// clusters orients the graph away from the anchor leaf and, for every
// internal vertex of the oriented tree, reports the (min, max, size) of the
// leaf numbers in its subtree. numberLeaf is called once per non-anchor leaf
// in discovery order and must return that leaf's number. The traversal is
// iterative post-order over the undirected adjacency.
func (g *graph) clusters(anchor string, numberLeaf func(name string) int, report func(lo, hi, size int)) {
	anchorNode := g.leafOf[anchor]
	start := g.adj[anchorNode][0] // a leaf has exactly one neighbor

	type result struct{ lo, hi, size int }
	type frame struct {
		node, parent *tree.Node
		next         int
		kids         int
		acc          result
	}
	results := make(map[*tree.Node]result)
	stack := []frame{{node: start, parent: anchorNode, acc: result{lo: 1 << 62, hi: -1}}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nbrs := g.adj[f.node]
		if f.next < len(nbrs) {
			nb := nbrs[f.next]
			f.next++
			if nb == f.parent {
				continue
			}
			f.kids++
			if len(g.adj[nb]) == 1 { // leaf
				v := numberLeaf(nb.Name)
				if v < f.acc.lo {
					f.acc.lo = v
				}
				if v > f.acc.hi {
					f.acc.hi = v
				}
				f.acc.size++
				continue
			}
			stack = append(stack, frame{node: nb, parent: f.node, acc: result{lo: 1 << 62, hi: -1}})
			continue
		}
		// All children done: fold any completed child results, then pop.
		for _, nb := range nbrs {
			if r, ok := results[nb]; ok && nb != f.parent {
				if r.lo < f.acc.lo {
					f.acc.lo = r.lo
				}
				if r.hi > f.acc.hi {
					f.acc.hi = r.hi
				}
				f.acc.size += r.size
				delete(results, nb)
			}
		}
		results[f.node] = f.acc
		// Degree-2 vertices of the oriented tree (e.g. the serialization
		// root seen from the far side) have a single child and duplicate
		// that child's cluster; reporting them would double-count splits.
		if f.kids >= 2 {
			report(f.acc.lo, f.acc.hi, f.acc.size)
		}
		stack = stack[:len(stack)-1]
	}
}
