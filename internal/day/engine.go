package day

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/collection"
	"repro/internal/tree"
)

// AverageRF is the "optimal pairwise" baseline engine: each query tree is
// compared against every reference tree with Day's O(n) algorithm, the
// best possible tree-versus-tree method. It still performs q·r
// comparisons, so BFHRF's advantage over it isolates exactly the paper's
// algorithmic contribution (tree-vs-hash replacing tree-vs-tree) rather
// than any constant-factor win. Workers parallelize over query trees.
func AverageRF(q, r collection.Source, workers int) ([]float64, error) {
	refs, err := collection.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("day: reference collection is empty")
	}
	if err := q.Reset(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}

	type job struct {
		idx int
		t   *tree.Tree
	}
	jobs := make(chan job, workers*2)
	outs := make([]map[int]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[int]float64)
			for j := range jobs {
				sum := 0
				for _, ref := range refs {
					d, err := RF(j.t, ref)
					if err != nil {
						if errs[w] == nil {
							errs[w] = fmt.Errorf("day: query tree %d: %w", j.idx, err)
						}
						break
					}
					sum += d
				}
				local[j.idx] = float64(sum) / float64(len(refs))
			}
			outs[w] = local
		}(w)
	}

	idx := 0
	var feedErr error
	for {
		t, err := q.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			feedErr = err
			break
		}
		jobs <- job{idx: idx, t: t}
		idx++
	}
	close(jobs)
	wg.Wait()
	if feedErr != nil {
		return nil, feedErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	results := make([]float64, idx)
	for _, local := range outs {
		for i, v := range local {
			results[i] = v
		}
	}
	return results, nil
}
