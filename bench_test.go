package repro

// One benchmark per table and figure of the paper's evaluation section.
// Each bench runs the corresponding experiment's engines on a scaled-down
// version of the same dataset (full-scale regeneration is cmd/rfbench's
// job; see EXPERIMENTS.md for the measured tables). Sub-benchmark names
// follow the paper's engine labels, so
//
//	go test -bench=Fig1 -benchmem
//
// prints the Fig. 1 series: DS and DSMP slowest, HashRF fast at small r,
// BFHRF fastest with the flattest memory.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/day"
	"repro/internal/hashrf"
	"repro/internal/newick"
	"repro/internal/seqrf"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// ---- shared dataset cache ------------------------------------------------

type benchData struct {
	trees []*tree.Tree
	taxa  *taxa.Set
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]benchData{}
)

// load materializes the first r trees of spec once per process.
func load(b *testing.B, spec dataset.Spec, r int) benchData {
	b.Helper()
	key := fmt.Sprintf("%s/%d", spec.Name, r)
	benchMu.Lock()
	defer benchMu.Unlock()
	if d, ok := benchCache[key]; ok {
		return d
	}
	trees, ts, err := spec.Prefix(r)
	if err != nil {
		b.Fatal(err)
	}
	d := benchData{trees: trees, taxa: ts}
	benchCache[key] = d
	return d
}

type engineSpec struct {
	name    string
	workers int
	kind    string // "seq", "hashrf", "bfhrf"
}

var paperEngines = []engineSpec{
	{"DS", 1, "seq"},
	{"DSMP8", 8, "seq"},
	{"DSMP16", 16, "seq"},
	{"HashRF", 1, "hashrf"},
	{"BFHRF8", 8, "bfhrf"},
	{"BFHRF16", 16, "bfhrf"},
}

// runEngine executes one full Q=R average-RF computation, the measured
// operation of every experiment in the paper.
func runEngine(b *testing.B, e engineSpec, d benchData, acceptUnweighted bool) {
	b.Helper()
	src := collection.FromTrees(d.trees)
	switch e.kind {
	case "seq":
		if _, err := seqrf.AverageRF(src, src, seqrf.Options{Taxa: d.taxa, Workers: e.workers}); err != nil {
			b.Fatal(err)
		}
	case "hashrf":
		if _, err := hashrf.AverageRF(src, hashrf.Options{Taxa: d.taxa, AcceptUnweighted: acceptUnweighted}); err != nil {
			b.Fatal(err)
		}
	case "bfhrf":
		h, err := core.Build(src, d.taxa, core.BuildOptions{Workers: e.workers, RequireComplete: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.AverageRF(src, core.QueryOptions{Workers: e.workers, RequireComplete: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSweep(b *testing.B, spec dataset.Spec, rs []int, acceptUnweighted bool) {
	b.Helper()
	for _, e := range paperEngines {
		for _, r := range rs {
			// The quadratic baselines get smaller points so the whole suite
			// stays fast; the series shape is still visible.
			if e.kind == "seq" && r > 512 {
				continue
			}
			d := load(b, spec, r)
			b.Run(fmt.Sprintf("%s/r=%d", e.name, r), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runEngine(b, e, d, acceptUnweighted)
				}
			})
		}
	}
}

// ---- Fig. 1: Avian (n=48) runtime and memory vs r -------------------------

func BenchmarkFig1_Avian(b *testing.B) {
	benchSweep(b, dataset.Avian(), []int{128, 512, 1024}, false)
}

// ---- Table III: Insect (n=144, unweighted) --------------------------------

func BenchmarkTableIII_Insect(b *testing.B) {
	// HashRF refuses unweighted input exactly as the paper reports; the
	// bench reproduces that by accepting the error for the HashRF engine.
	spec := dataset.Insect()
	rs := []int{128, 512}
	for _, e := range paperEngines {
		for _, r := range rs {
			if e.kind == "seq" && r > 512 {
				continue
			}
			d := load(b, spec, r)
			b.Run(fmt.Sprintf("%s/r=%d", e.name, r), func(b *testing.B) {
				if e.kind == "hashrf" {
					src := collection.FromTrees(d.trees)
					if _, err := hashrf.AverageRF(src, hashrf.Options{Taxa: d.taxa}); err == nil {
						b.Fatal("HashRF must refuse the unweighted Insect data (paper §VI.B)")
					}
					b.Skip("HashRF cannot read unweighted data — '-' in the paper's Table III")
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runEngine(b, e, d, true)
				}
			})
		}
	}
}

// ---- Table IV: variable taxa (r=1000) --------------------------------------

func BenchmarkTableIV_VarTaxa(b *testing.B) {
	for _, n := range []int{100, 250, 500} {
		spec := dataset.VariableTaxa(n)
		for _, e := range paperEngines {
			r := 128
			d := load(b, spec, r)
			b.Run(fmt.Sprintf("%s/n=%d", e.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runEngine(b, e, d, false)
				}
			})
		}
	}
}

// ---- Table V / Fig. 2: variable trees (n=100) ------------------------------

func BenchmarkTableV_Fig2_VarTrees(b *testing.B) {
	benchSweep(b, dataset.VariableTrees(100000), []int{256, 1024, 2048}, false)
}

// ---- Table I: complexity — growth of the two BFHRF phases -----------------

func BenchmarkTableI_BFHRFBuild(b *testing.B) {
	// The hash build phase is O(n²r): time per tree should be flat in r.
	for _, r := range []int{256, 1024, 4096} {
		d := load(b, dataset.VariableTrees(100000), r)
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(collection.FromTrees(d.trees), d.taxa,
					core.BuildOptions{RequireComplete: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableI_BFHRFQuery(b *testing.B) {
	// One tree-vs-hash comparison is O(n²), independent of r.
	for _, r := range []int{256, 1024, 4096} {
		d := load(b, dataset.VariableTrees(100000), r)
		h, err := core.Build(collection.FromTrees(d.trees), d.taxa,
			core.BuildOptions{RequireComplete: true})
		if err != nil {
			b.Fatal(err)
		}
		q := d.trees[0]
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.AverageRFOne(q, core.QueryOptions{RequireComplete: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- §III.C accuracy: the consensus path off the hash ---------------------

func BenchmarkConsensusFromBFH(b *testing.B) {
	d := load(b, dataset.Avian(), 512)
	h, err := core.Build(collection.FromTrees(d.trees), d.taxa, core.BuildOptions{RequireComplete: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Consensus(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations: the design choices DESIGN.md calls out --------------------

func BenchmarkAblation_KeyCompression(b *testing.B) {
	// §IX: raw vs compressed keys. Compression trades per-split encode CPU
	// for smaller key storage; the win grows with n.
	for _, n := range []int{100, 500} {
		d := load(b, dataset.VariableTaxa(n), 128)
		for _, compress := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/raw", n)
			if compress {
				name = fmt.Sprintf("n=%d/compressed", n)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					h, err := core.Build(collection.FromTrees(d.trees), d.taxa, core.BuildOptions{
						RequireComplete: true,
						CompressKeys:    compress,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := h.AverageRF(collection.FromTrees(d.trees),
						core.QueryOptions{RequireComplete: true}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblation_Workers(b *testing.B) {
	// The paper's §VII.A observation: speedup from 8 to 16 cores is
	// sub-linear. Vary the worker count on a fixed workload.
	d := load(b, dataset.VariableTrees(100000), 2048)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := core.Build(collection.FromTrees(d.trees), d.taxa,
					core.BuildOptions{Workers: w, RequireComplete: true})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := h.AverageRF(collection.FromTrees(d.trees),
					core.QueryOptions{Workers: w, RequireComplete: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_DayVsBFHRF(b *testing.B) {
	// The optimal-pairwise engine (Day's O(n) per comparison) still does
	// q·r work; BFHRF's win over it isolates the tree-vs-hash idea itself.
	d := load(b, dataset.VariableTrees(100000), 128)
	src := collection.FromTrees(d.trees)
	b.Run("DayPairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := day.AverageRF(src, src, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BFHRF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := core.Build(src, d.taxa, core.BuildOptions{Workers: 8, RequireComplete: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.AverageRF(src, core.QueryOptions{Workers: 8, RequireComplete: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- micro-benchmarks: the substrate costs behind Table I -----------------

func BenchmarkMicro_NewickParse(b *testing.B) {
	d := load(b, dataset.VariableTrees(100000), 8)
	s := newick.String(d.trees[0], newick.DefaultWriteOptions())
	b.ReportAllocs()
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		if _, err := newick.Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_BipartitionExtract(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		spec := dataset.VariableTaxa(n)
		d := load(b, spec, 8)
		ex := bipart.NewExtractor(d.taxa)
		t := d.trees[0]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Extract(t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMicro_DayRF(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		spec := dataset.VariableTaxa(n)
		d := load(b, spec, 8)
		t1, t2 := d.trees[0], d.trees[1]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := day.RF(t1, t2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMicro_MSCGeneTree(b *testing.B) {
	ts := taxa.Generate(100)
	msc := simphy.NewMSCCollection(ts, 1, 1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = msc.Make(i)
	}
}
