package repro

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

var (
	quartetT  = "((A,B),(C,D));"
	quartetT2 = "((D,B),(C,A));"
)

func TestAverageRFNewickPaperExample(t *testing.T) {
	res, err := AverageRFNewick([]string{quartetT}, []string{quartetT2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].AvgRF != 2 {
		t.Errorf("results = %+v, want [{0 2}]", res)
	}
}

func TestAverageRFFiles(t *testing.T) {
	dir := t.TempDir()
	qPath := filepath.Join(dir, "q.nwk")
	rPath := filepath.Join(dir, "r.nwk")
	if err := os.WriteFile(qPath, []byte(quartetT+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs := quartetT + "\n" + quartetT + "\n" + quartetT2 + "\n"
	if err := os.WriteFile(rPath, []byte(refs), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AverageRFFiles(qPath, rPath, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !approxEq(res[0].AvgRF, 2.0/3.0) {
		t.Errorf("results = %+v, want avg 2/3", res)
	}
}

func TestAverageRFFilesMissing(t *testing.T) {
	if _, err := AverageRFFiles("/nope/q.nwk", "/nope/r.nwk", Config{}); err == nil {
		t.Error("missing files should fail")
	}
}

func TestVariants(t *testing.T) {
	q := []string{quartetT}
	r := []string{quartetT2}
	norm, err := AverageRFNewick(q, r, Config{Variant: VariantNormalized})
	if err != nil {
		t.Fatal(err)
	}
	// n=4: max RF = 2(n−3) = 2, so normalized = 1.
	if !approxEq(norm[0].AvgRF, 1) {
		t.Errorf("normalized = %v, want 1", norm[0].AvgRF)
	}
	if _, err := AverageRFNewick(q, r, Config{Variant: "bogus"}); err == nil {
		t.Error("bogus variant should fail")
	}
}

func TestWeightedVariantEndToEnd(t *testing.T) {
	q := []string{"((A:1,C:1):4,(B:1,D:1):4);"}
	r := []string{"((A:1,B:1):2,(C:1,D:1):2);"}
	res, err := AverageRFNewick(q, r, Config{Variant: VariantWeighted})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res[0].AvgRF, 6) {
		t.Errorf("weighted = %v, want 6", res[0].AvgRF)
	}
}

func TestSplitSizeFilter(t *testing.T) {
	// With every split filtered away (min size 4 on 4 taxa is impossible),
	// the distance collapses to 0.
	res, err := AverageRFNewick([]string{quartetT}, []string{quartetT2}, Config{MinSplitSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AvgRF != 0 {
		t.Errorf("filtered avg = %v, want 0", res[0].AvgRF)
	}
}

func TestIntersectTaxa(t *testing.T) {
	// Query covers {A,B,C,D,E}; references cover {A,B,C,D,F}. Intersection
	// is {A,B,C,D} where both agree on AB|CD → distance 0.
	q := []string{"(((A,B),(C,D)),E);"}
	r := []string{"(((A,B),(C,D)),F);"}
	res, err := AverageRFNewick(q, r, Config{IntersectTaxa: true})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AvgRF != 0 {
		t.Errorf("intersect-taxa avg = %v, want 0", res[0].AvgRF)
	}
	// Without IntersectTaxa the same input must fail (taxa mismatch).
	if _, err := AverageRFNewick(q, r, Config{}); err == nil {
		t.Error("mismatched taxa without IntersectTaxa should fail")
	}
}

func TestIntersectTaxaTooFew(t *testing.T) {
	q := []string{"((A,B),(X,Y));"}
	r := []string{"((A,B),(W,Z));"}
	if _, err := AverageRFNewick(q, r, Config{IntersectTaxa: true}); err == nil {
		t.Error("intersection of 2 taxa should fail")
	}
}

func TestBestResult(t *testing.T) {
	res, err := AverageRFNewick(
		[]string{quartetT, quartetT2, "((A,C),(B,D));"},
		[]string{quartetT, quartetT, quartetT2},
		Config{},
	)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if best.Index != 0 {
		t.Errorf("best = %+v; the reference-majority topology should win", best)
	}
	if _, err := BestResult(nil); err == nil {
		t.Error("BestResult of nothing should fail")
	}
}

func TestPairwiseRF(t *testing.T) {
	d, err := PairwiseRF(quartetT, quartetT2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("PairwiseRF = %d, want 2", d)
	}
	if _, err := PairwiseRF("garbage", quartetT); err == nil {
		t.Error("bad newick should fail")
	}
	if _, err := PairwiseRF(quartetT, "((A,B),(C,E));"); err == nil {
		t.Error("mismatched taxa should fail")
	}
}

func TestConsensusNewick(t *testing.T) {
	refs := []string{quartetT, quartetT, quartetT2}
	cons, err := ConsensusNewick(refs, 0.5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(cons, ";") {
		t.Errorf("consensus not Newick-terminated: %q", cons)
	}
	// The majority topology is quartetT; consensus must be at distance 0.
	d, err := PairwiseRF(cons, quartetT)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("consensus RF to majority topology = %d, want 0", d)
	}
}

func TestConsensusFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.nwk")
	if err := os.WriteFile(path, []byte(quartetT+"\n"+quartetT+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cons, err := ConsensusFile(path, 0.5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := PairwiseRF(cons, quartetT); d != 0 {
		t.Errorf("consensus = %q, RF = %d", cons, d)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := AverageRFNewick(nil, []string{quartetT}, Config{}); err != nil {
		// Zero queries is legal: zero results.
	}
	if _, err := AverageRFNewick([]string{quartetT}, nil, Config{}); err == nil {
		t.Error("empty reference should fail")
	}
}
