package repro

// End-to-end tests of the perf-observability surface: rfbench's
// -compare gate (file vs file, no measuring) and the profiling hooks on
// bfhrf. The committed BENCH_0001.json is validated here too, so a
// malformed baseline cannot land.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perfjson"
)

func perfSuiteFixture() *perfjson.Suite {
	return &perfjson.Suite{
		Schema: perfjson.SchemaVersion,
		Tool:   "test",
		Scale:  0.02,
		Records: []perfjson.Record{
			{Workload: "vartrees-n100-r10000", Engine: "DS", N: 100, R: 200, Workers: 1,
				Reps: 5, NsOpMedian: 300e6, NsOpMin: 280e6, PeakHeapMB: 12, PeakHeapMBMin: 11},
			{Workload: "vartrees-n100-r10000", Engine: "BFHRF8", N: 100, R: 200, Workers: 8,
				Reps: 5, NsOpMedian: 60e6, NsOpMin: 55e6, PeakHeapMB: 4, PeakHeapMBMin: 3.5},
		},
	}
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !strings.Contains(err.Error(), "exit status") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	if e, ok := err.(*exec.ExitError); ok {
		ee = e
	} else {
		t.Fatalf("not an ExitError: %v", err)
	}
	return ee.ExitCode()
}

func TestCLIRfbenchCompareGate(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	if err := perfjson.WriteFile(basePath, perfSuiteFixture()); err != nil {
		t.Fatal(err)
	}

	// Identical suites: exit 0, PASS.
	stdout, _, err := run(t, "rfbench", "-compare", basePath, "-with", basePath)
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("identical compare exited %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "PASS") {
		t.Errorf("expected PASS verdict:\n%s", stdout)
	}

	// ≤10% jitter on both statistics: still exit 0 at the default
	// threshold.
	jit := perfSuiteFixture()
	for i := range jit.Records {
		jit.Records[i].NsOpMedian = jit.Records[i].NsOpMedian * 109 / 100
		jit.Records[i].NsOpMin = jit.Records[i].NsOpMin * 109 / 100
	}
	jitPath := filepath.Join(dir, "jitter.json")
	if err := perfjson.WriteFile(jitPath, jit); err != nil {
		t.Fatal(err)
	}
	stdout, _, err = run(t, "rfbench", "-compare", basePath, "-with", jitPath)
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("9%% jitter should pass, exited %d:\n%s", code, stdout)
	}

	// Injected 2x slowdown: exit 3, named culprit.
	slow := perfSuiteFixture()
	for i := range slow.Records {
		slow.Records[i].NsOpMedian *= 2
		slow.Records[i].NsOpMin *= 2
	}
	slowPath := filepath.Join(dir, "slow.json")
	if err := perfjson.WriteFile(slowPath, slow); err != nil {
		t.Fatal(err)
	}
	stdout, _, err = run(t, "rfbench", "-compare", basePath, "-with", slowPath)
	if code := exitCode(t, err); code != 3 {
		t.Fatalf("2x slowdown should exit 3, got %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "REGRESSED") || !strings.Contains(stdout, "vartrees-n100-r10000/DS") {
		t.Errorf("regression report should name the culprit:\n%s", stdout)
	}

	// A vanished benchmark also fails the gate.
	short := perfSuiteFixture()
	short.Records = short.Records[:1]
	shortPath := filepath.Join(dir, "short.json")
	if err := perfjson.WriteFile(shortPath, short); err != nil {
		t.Fatal(err)
	}
	stdout, _, err = run(t, "rfbench", "-compare", basePath, "-with", shortPath)
	if code := exitCode(t, err); code != 3 {
		t.Fatalf("missing workload should exit 3, got %d:\n%s", code, stdout)
	}

	// Malformed baseline: exit 1 with a decode error, not a panic.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"schema":99,"records":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, err := run(t, "rfbench", "-compare", badPath, "-with", basePath)
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("bad baseline should exit 1, got %d", code)
	}
	if !strings.Contains(stderr, "schema") {
		t.Errorf("error should mention the schema: %s", stderr)
	}

	// -with without -compare is a usage error.
	_, _, err = run(t, "rfbench", "-with", basePath)
	if code := exitCode(t, err); code != 2 {
		t.Errorf("-with alone should exit 2, got %d", code)
	}
}

func TestCLICommittedBaselineIsValid(t *testing.T) {
	// Every committed BENCH_*.json of the perf trajectory must decode,
	// validate, and gate cleanly against itself.
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json baselines found")
	}
	for _, path := range paths {
		suite, err := perfjson.ReadFile(path)
		if err != nil {
			t.Fatalf("committed baseline %s invalid: %v", path, err)
		}
		if len(suite.Records) == 0 {
			t.Fatalf("committed baseline %s has no records", path)
		}
		cmp, err := perfjson.Compare(suite, suite, perfjson.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !cmp.OK() {
			t.Errorf("baseline %s does not gate cleanly against itself: %+v", path, cmp)
		}
	}
}

func TestCLISnapshotLoadBeatsRebuild(t *testing.T) {
	// The committed BENCH_0005 baseline must record the snapshot win the
	// docs claim: on the huge-taxa point, loading a persisted epoch is at
	// least 5x faster than rebuilding the table from the Newick file. The
	// assertion is on the committed numbers, not a fresh measurement, so it
	// is immune to CI noise — but a regenerated baseline that loses the win
	// cannot land.
	suite, err := perfjson.ReadFile("BENCH_0005.json")
	if err != nil {
		t.Fatal(err)
	}
	const workload = "hugetaxa-n4096-r1000"
	var load, rebuild *perfjson.Record
	for i := range suite.Records {
		r := &suite.Records[i]
		if r.Workload != workload {
			continue
		}
		switch r.Engine {
		case "BFHRF-LOAD":
			load = r
		case "BFHRF-REBUILD":
			rebuild = r
		}
	}
	if load == nil || rebuild == nil {
		t.Fatalf("BENCH_0005.json must record both BFHRF-LOAD and BFHRF-REBUILD on %s", workload)
	}
	if ratio := float64(rebuild.NsOpMedian) / float64(load.NsOpMedian); ratio < 5 {
		t.Errorf("snapshot load is only %.1fx faster than rebuild on %s (median %d vs %d ns/op), want >= 5x",
			ratio, workload, load.NsOpMedian, rebuild.NsOpMedian)
	}
}

func TestCLIBfhrfProfilingHooks(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := t.TempDir()
	refs := filepath.Join(dir, "refs.nwk")
	if _, stderr, err := run(t, "treegen", "-n", "16", "-r", "30", "-seed", "7", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "heap.pprof")
	trc := filepath.Join(dir, "trace.out")
	if _, stderr, err := run(t, "bfhrf", "-ref", refs,
		"-cpuprofile", cpu, "-memprofile", mem, "-trace", trc); err != nil {
		t.Fatalf("bfhrf with profiling: %v\n%s", err, stderr)
	}
	for _, p := range []string{cpu, mem, trc} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", p, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// A failing run still flushes profiles before exiting non-zero.
	cpu2 := filepath.Join(dir, "cpu2.pprof")
	_, _, err := run(t, "bfhrf", "-ref", filepath.Join(dir, "missing.nwk"), "-cpuprofile", cpu2)
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("missing ref should exit 1, got %d", code)
	}
	if fi, err := os.Stat(cpu2); err != nil || fi.Size() == 0 {
		t.Errorf("CPU profile should be flushed on the error path too (err=%v)", err)
	}
}
