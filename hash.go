package repro

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/newick"
)

// Hash is a reusable bipartition frequency hash over one reference
// collection. Build it once, then run any number of queries, consensus
// constructions, or incremental updates against it — the amortization that
// makes BFHRF's "r operations to create BFH_R, then q tree-versus-hash
// comparisons" decomposition valuable beyond a single batch run.
type Hash struct {
	h   *core.FreqHash
	cfg Config
}

// BuildHashFile streams the reference Newick file once and builds the hash.
func BuildHashFile(refPath string, cfg Config) (*Hash, error) {
	r, err := collection.OpenFile(refPath)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return buildHash(r, cfg)
}

// BuildHashNewick builds the hash from in-memory Newick strings.
func BuildHashNewick(refs []string, cfg Config) (*Hash, error) {
	r, err := parseAll(refs)
	if err != nil {
		return nil, fmt.Errorf("repro: reference: %w", err)
	}
	return buildHash(r, cfg)
}

func buildHash(r collection.Source, cfg Config) (*Hash, error) {
	ts, err := collection.ScanTaxa(r)
	if err != nil {
		return nil, err
	}
	bo, err := cfg.buildOptions(ts)
	if err != nil {
		return nil, err
	}
	h, err := core.Build(r, ts, bo)
	if err != nil {
		return nil, err
	}
	return &Hash{h: h, cfg: cfg}, nil
}

// Stats summarizes the hash, the quantities the paper's memory analysis
// turns on (§VII.C).
type Stats struct {
	// NumTrees is r, the reference collection size.
	NumTrees int
	// NumTaxa is n, the catalogue size.
	NumTaxa int
	// UniqueBipartitions bounds the hash's memory.
	UniqueBipartitions int
	// TotalBipartitions is sumBFHR, the total instances indexed.
	TotalBipartitions uint64
	// Weighted reports whether every reference split carried a length.
	Weighted bool
	// Compressed reports whether keys are stored compressed (§IX).
	Compressed bool
}

// Stats returns the hash summary.
func (h *Hash) Stats() Stats {
	return Stats{
		NumTrees:           h.h.NumTrees(),
		NumTaxa:            h.h.Taxa().Len(),
		UniqueBipartitions: h.h.UniqueBipartitions(),
		TotalBipartitions:  h.h.TotalBipartitions(),
		Weighted:           h.h.Weighted(),
		Compressed:         h.h.Compressed(),
	}
}

// AverageRFFile computes average distances for every tree in the query
// Newick file against the hash.
func (h *Hash) AverageRFFile(queryPath string) ([]Result, error) {
	q, err := collection.OpenFile(queryPath)
	if err != nil {
		return nil, err
	}
	defer q.Close()
	return query(h.h, q, h.cfg)
}

// AverageRFNewick computes average distances for query Newick strings.
func (h *Hash) AverageRFNewick(queries []string) ([]Result, error) {
	q, err := parseAll(queries)
	if err != nil {
		return nil, fmt.Errorf("repro: query: %w", err)
	}
	return query(h.h, q, h.cfg)
}

// AverageRFOne computes the average distance of a single Newick tree.
func (h *Hash) AverageRFOne(newickTree string) (float64, error) {
	res, err := h.AverageRFNewick([]string{newickTree})
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("repro: expected 1 result, got %d", len(res))
	}
	return res[0].AvgRF, nil
}

// Consensus returns the threshold consensus tree as a Newick string
// (threshold 0.5 = majority rule).
func (h *Hash) Consensus(threshold float64) (string, error) {
	t, err := h.h.Consensus(threshold)
	if err != nil {
		return "", err
	}
	return newick.String(t, newick.DefaultWriteOptions()), nil
}

// GreedyConsensus returns the extended (greedy) majority-rule consensus.
func (h *Hash) GreedyConsensus(minSupport float64) (string, error) {
	t, err := h.h.GreedyConsensus(minSupport)
	if err != nil {
		return "", err
	}
	return newick.String(t, newick.DefaultWriteOptions()), nil
}

// AddTree folds one more reference tree (as Newick) into the hash.
func (h *Hash) AddTree(newickTree string) error {
	t, err := newick.Parse(newickTree)
	if err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return h.h.AddTree(t, h.cfg.filter(h.h.Taxa().Len()), true)
}

// RemoveTree subtracts a previously added reference tree (as Newick).
func (h *Hash) RemoveTree(newickTree string) error {
	t, err := newick.Parse(newickTree)
	if err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	return h.h.RemoveTree(t, h.cfg.filter(h.h.Taxa().Len()), true)
}

// AnnotateSupport labels every internal edge of the Newick tree with the
// percentage of reference trees containing its split, returning the
// annotated Newick. digits controls decimal places on the labels.
func (h *Hash) AnnotateSupport(newickTree string, digits int) (string, error) {
	t, err := newick.Parse(newickTree)
	if err != nil {
		return "", fmt.Errorf("repro: %w", err)
	}
	if err := h.h.AnnotateSupport(t, digits); err != nil {
		return "", err
	}
	return newick.String(t, newick.DefaultWriteOptions()), nil
}

// SplitSupport returns, for every bipartition with support at least
// minSupport, its Newick-style description (the smaller side's taxa) and
// its support fraction, in decreasing support order.
type SplitSupport struct {
	// Taxa is the 1-side of the canonical split encoding.
	Taxa []string
	// Support is frequency / r.
	Support float64
	// MeanLength is the mean inducing-edge length (0 if unweighted).
	MeanLength float64
}

// Splits lists stored bipartitions with support ≥ minSupport, strongest
// first — the raw material for custom consensus or support annotation.
func (h *Hash) Splits(minSupport float64) ([]SplitSupport, error) {
	minFreq := int(minSupport * float64(h.h.NumTrees()))
	if minFreq < 1 {
		minFreq = 1
	}
	entries, err := h.h.Entries(minFreq)
	if err != nil {
		return nil, err
	}
	ts := h.h.Taxa()
	out := make([]SplitSupport, 0, len(entries))
	for _, e := range entries {
		if e.Support < minSupport {
			continue
		}
		idx := e.Bipartition.Mask().Indices()
		names := make([]string, len(idx))
		for i, j := range idx {
			names[i] = ts.Name(j)
		}
		out = append(out, SplitSupport{Taxa: names, Support: e.Support, MeanLength: e.MeanLength})
	}
	return out, nil
}
