package repro

// End-to-end tests of the four command-line tools: each binary is built
// once per test run and exercised against generated data, including the
// failure paths (missing files, malformed input, bad flags).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles every cmd/ binary into a shared temp dir once.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bfhrf-cli-")
		if err != nil {
			cliErr = err
			return
		}
		cliDir = dir
		for _, name := range []string{"bfhrf", "bfhrfd", "rfdist", "treegen", "rfbench", "tracevet"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
			cmd.Dir = "."
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				t.Logf("build %s: %s", name, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Skipf("cannot build CLIs: %v", cliErr)
	}
	return cliDir
}

func run(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), bin), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestCLITreegenAndBfhrf(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := t.TempDir()
	refs := filepath.Join(dir, "refs.nwk")
	queries := filepath.Join(dir, "q.nwk")

	if _, stderr, err := run(t, "treegen", "-n", "16", "-r", "40", "-seed", "5", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	if _, stderr, err := run(t, "treegen", "-n", "16", "-r", "40", "-seed", "5", "-queries", "6", "-moves", "2", "-out", queries); err != nil {
		t.Fatalf("treegen -queries: %v\n%s", err, stderr)
	}

	stdout, _, err := run(t, "bfhrf", "-ref", refs, "-query", queries)
	if err != nil {
		t.Fatalf("bfhrf: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 6 {
		t.Fatalf("bfhrf output lines = %d, want 6:\n%s", len(lines), stdout)
	}
	for _, l := range lines {
		if !strings.Contains(l, "\t") {
			t.Errorf("malformed output line %q", l)
		}
	}

	// -best prints exactly one line.
	stdout, _, err = run(t, "bfhrf", "-ref", refs, "-query", queries, "-best")
	if err != nil {
		t.Fatalf("bfhrf -best: %v", err)
	}
	if n := len(strings.Split(strings.TrimSpace(stdout), "\n")); n != 1 {
		t.Errorf("-best printed %d lines", n)
	}

	// Q=R default, variants, compression.
	for _, extra := range [][]string{
		{},
		{"-variant", "normalized"},
		{"-variant", "info"},
		{"-compress"},
		{"-min-split", "3"},
	} {
		args := append([]string{"-ref", refs}, extra...)
		if _, stderr, err := run(t, "bfhrf", args...); err != nil {
			t.Errorf("bfhrf %v: %v\n%s", extra, err, stderr)
		}
	}
}

func TestCLIBfhrfErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	if _, _, err := run(t, "bfhrf"); err == nil {
		t.Error("bfhrf without -ref should exit non-zero")
	}
	if _, _, err := run(t, "bfhrf", "-ref", "/nonexistent.nwk"); err == nil {
		t.Error("bfhrf with missing file should exit non-zero")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.nwk")
	if err := os.WriteFile(bad, []byte("(A,B,(C;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "bfhrf", "-ref", bad); err == nil {
		t.Error("bfhrf with malformed Newick should exit non-zero")
	}
	goodRefs := filepath.Join(dir, "g.nwk")
	if err := os.WriteFile(goodRefs, []byte("((A,B),(C,D));\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "bfhrf", "-ref", goodRefs, "-variant", "bogus"); err == nil {
		t.Error("bfhrf with unknown variant should exit non-zero")
	}
}

func TestCLIRfdist(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.nwk")
	b := filepath.Join(dir, "b.nwk")
	coll := filepath.Join(dir, "coll.nwk")
	os.WriteFile(a, []byte("((A,B),(C,D));\n"), 0o644)
	os.WriteFile(b, []byte("((D,B),(C,A));\n"), 0o644)
	os.WriteFile(coll, []byte("((A,B),(C,D));\n((A,B),(C,D));\n((A,C),(B,D));\n"), 0o644)

	stdout, _, err := run(t, "rfdist", "-a", a, "-b", b)
	if err != nil {
		t.Fatalf("rfdist pairwise: %v", err)
	}
	if strings.TrimSpace(stdout) != "2" {
		t.Errorf("pairwise RF = %q, want 2 (the paper's worked example)", strings.TrimSpace(stdout))
	}

	stdout, _, err = run(t, "rfdist", "-matrix", coll)
	if err != nil {
		t.Fatalf("rfdist -matrix: %v", err)
	}
	rows := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(rows) != 3 {
		t.Fatalf("matrix rows = %d", len(rows))
	}
	if !strings.HasPrefix(rows[0], "0\t0\t2") {
		t.Errorf("matrix row 0 = %q", rows[0])
	}

	stdout, _, err = run(t, "rfdist", "-matrix", coll, "-avg")
	if err != nil {
		t.Fatalf("rfdist -avg: %v", err)
	}
	if len(strings.Split(strings.TrimSpace(stdout), "\n")) != 3 {
		t.Error("avg output should have one line per tree")
	}

	for _, mode := range [][]string{
		{"-consensus", coll, "-t", "0.5"},
		{"-consensus", coll, "-greedy"},
	} {
		stdout, stderr, err := run(t, "rfdist", mode...)
		if err != nil {
			t.Fatalf("rfdist %v: %v\n%s", mode, err, stderr)
		}
		if !strings.HasSuffix(strings.TrimSpace(stdout), ";") {
			t.Errorf("consensus output not Newick: %q", stdout)
		}
	}

	// ASCII rendering: one row per taxon, no Newick.
	stdout, stderr, err := run(t, "rfdist", "-consensus", coll, "-draw")
	if err != nil {
		t.Fatalf("rfdist -draw: %v\n%s", err, stderr)
	}
	if lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n"); len(lines) != 4 {
		t.Errorf("-draw lines = %d, want 4:\n%s", len(lines), stdout)
	}
	if strings.Contains(stdout, ";") {
		t.Errorf("-draw output should not be Newick:\n%s", stdout)
	}

	// Clustering mode.
	stdout, _, err = run(t, "rfdist", "-matrix", coll, "-cluster", "2")
	if err != nil {
		t.Fatalf("rfdist -cluster: %v", err)
	}
	if len(strings.Split(strings.TrimSpace(stdout), "\n")) != 3 {
		t.Errorf("-cluster should print one label per tree:\n%s", stdout)
	}
	if _, _, err := run(t, "rfdist", "-matrix", coll, "-cluster", "2", "-linkage", "bogus"); err == nil {
		t.Error("bogus linkage should exit non-zero")
	}

	if _, _, err := run(t, "rfdist"); err == nil {
		t.Error("rfdist without a mode should exit non-zero")
	}
}

func TestCLITreegenDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := t.TempDir()
	for _, ds := range []string{"avian", "insect", "vartrees", "vartaxa"} {
		out := filepath.Join(dir, ds+".nwk")
		if _, stderr, err := run(t, "treegen", "-dataset", ds, "-r", "5", "-out", out); err != nil {
			t.Fatalf("treegen -dataset %s: %v\n%s", ds, err, stderr)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if n := strings.Count(string(data), ";"); n != 5 {
			t.Errorf("%s: wrote %d trees, want 5", ds, n)
		}
	}
	// Insect must be unweighted.
	data, _ := os.ReadFile(filepath.Join(dir, "insect.nwk"))
	if strings.Contains(string(data), ":") {
		t.Error("insect output should carry no branch lengths")
	}
	// Unknown dataset fails.
	if _, _, err := run(t, "treegen", "-dataset", "bogus"); err == nil {
		t.Error("unknown dataset should exit non-zero")
	}
	// Random mode.
	if _, _, err := run(t, "treegen", "-n", "8", "-r", "3", "-random", "-out", filepath.Join(dir, "rnd.nwk")); err != nil {
		t.Error("treegen -random failed")
	}
}

func TestCLIRfbenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	stdout, stderr, err := run(t, "rfbench", "-exp", "datasets")
	if err != nil {
		t.Fatalf("rfbench: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "Table II") || !strings.Contains(stdout, "Avian") {
		t.Errorf("rfbench datasets output malformed:\n%s", stdout)
	}
	if _, _, err := run(t, "rfbench", "-exp", "nonsense"); err == nil {
		t.Error("unknown experiment should exit non-zero")
	}
}
